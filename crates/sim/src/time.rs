//! Virtual time for the discrete-event simulation.
//!
//! All simulated clocks in ROS2 use [`SimTime`], a nanosecond-resolution
//! instant, and [`SimDuration`], a nanosecond-resolution span. Integer
//! arithmetic keeps every timing computation exactly reproducible across
//! platforms — the simulation never touches floating point on the hot path
//! except where explicitly noted (rate conversions use `u128` integer math).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }
    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }
    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }
    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }
    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }
    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }
    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }
    /// Creates a span from a float second count, rounding to nanoseconds.
    ///
    /// Reserved for model-calibration constants; runtime paths use integers.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs * 1e9).round().max(0.0) as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// The span in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// The span in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time needed to move `bytes` bytes at `bytes_per_sec`, rounded up
    /// to the next nanosecond. Exact `u128` integer arithmetic.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        if bytes_per_sec == 0 {
            return SimDuration::MAX;
        }
        let num = bytes as u128 * 1_000_000_000u128;
        let den = bytes_per_sec as u128;
        SimDuration(num.div_ceil(den).min(u64::MAX as u128) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Scales the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the span by a float factor (model calibration only).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds when `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 15_000);
        assert_eq!((t - SimTime::from_micros(10)).as_micros(), 5);
        assert_eq!(
            SimDuration::from_micros(4) * 3,
            SimDuration::from_micros(12)
        );
    }

    #[test]
    fn bytes_rate_math_is_exact() {
        // 1 GiB at 1 GiB/s is exactly one second.
        let d = SimDuration::for_bytes(1 << 30, 1 << 30);
        assert_eq!(d, SimDuration::from_secs(1));
        // Rounds up: 1 byte at 3 B/s = ceil(1e9/3) ns.
        let d = SimDuration::for_bytes(1, 3);
        assert_eq!(d.as_nanos(), 333_333_334);
        // Zero rate is "never".
        assert_eq!(SimDuration::for_bytes(1, 0), SimDuration::MAX);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(4));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
        assert_eq!(format!("{}", SimDuration::from_micros(42)), "42.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(42)), "42.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(42)), "42.000s");
    }
}
