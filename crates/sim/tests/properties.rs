//! Property-based tests for the simulation kernel's core invariants.

use proptest::prelude::*;
use ros2_sim::{
    BandwidthServer, EventQueue, LatencyHistogram, ServerPool, SimDuration, SimRng, SimTime,
    TokenBucket,
};

proptest! {
    /// The event queue always yields events in nondecreasing time order, and
    /// ties preserve insertion order.
    #[test]
    fn queue_is_totally_ordered(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        let mut popped = 0;
        while let Some((at, idx)) = q.pop() {
            prop_assert!(at >= last.0);
            if at == last.0 && popped > 0 {
                prop_assert!(idx > last.1, "tie must preserve insertion order");
            }
            last = (at, idx);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert_eq!(q.past_schedules(), 0);
    }

    /// A bandwidth pipe conserves time: total busy time equals the exact
    /// serialization time of all bytes pushed through it.
    #[test]
    fn bandwidth_conserves_bytes(
        rate in 1_000u64..10_000_000_000,
        sizes in prop::collection::vec(1u64..10_000_000, 1..50),
    ) {
        let mut link = BandwidthServer::new(rate);
        let mut expected = SimDuration::ZERO;
        for &s in &sizes {
            link.transmit(SimTime::ZERO, s);
            expected += SimDuration::for_bytes(s, rate);
        }
        prop_assert_eq!(link.busy_time(), expected);
        prop_assert_eq!(link.bytes_served(), sizes.iter().sum::<u64>());
        // FIFO at time zero means the pipe drains exactly at sum of services.
        prop_assert_eq!(link.backlog(SimTime::ZERO), expected);
    }

    /// With k servers, k jobs of equal service submitted together finish
    /// simultaneously, and n > k jobs take ceil(n/k) rounds.
    #[test]
    fn pool_parallelism_bound(k in 1usize..16, n in 1usize..64, svc_us in 1u64..1000) {
        let mut pool = ServerPool::new(k);
        let svc = SimDuration::from_micros(svc_us);
        let mut finish_max = SimTime::ZERO;
        for _ in 0..n {
            let g = pool.submit(SimTime::ZERO, svc);
            finish_max = finish_max.max(g.finish);
        }
        let rounds = n.div_ceil(k) as u64;
        prop_assert_eq!(finish_max, SimTime::ZERO + svc * rounds);
    }

    /// Token bucket long-run grant rate never exceeds the configured rate
    /// (beyond the initial burst).
    #[test]
    fn token_bucket_respects_rate(
        rate in 100u64..1_000_000,
        burst in 1u64..10_000,
        demands in prop::collection::vec(1u64..100, 1..100),
    ) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut grant = SimTime::ZERO;
        let total: u64 = demands.iter().sum();
        for &d in &demands {
            grant = tb.acquire(grant, d);
        }
        // All tokens beyond the initial burst must have waited for refill.
        if total > burst {
            let min_elapsed = SimDuration::for_bytes(total - burst, rate);
            prop_assert!(
                grant.saturating_since(SimTime::ZERO) + SimDuration::from_nanos(1) >= min_elapsed,
                "granted {total} tokens by {grant}, rate {rate}/s burst {burst}"
            );
        }
    }

    /// Histogram percentiles are monotone in p and bounded by min/max.
    #[test]
    fn histogram_percentiles_monotone(samples in prop::collection::vec(1u64..10_000_000_000, 1..500)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        let mut last = SimDuration::ZERO;
        for p in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "percentile({p}) regressed");
            prop_assert!(v >= h.min() || v == SimDuration::ZERO);
            prop_assert!(v <= h.max());
            last = v;
        }
        // Every recorded value is within 1/32 relative error of its bucket.
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// RNG forking is label-stable: forking twice with the same label gives
    /// the same stream; different labels give different streams.
    #[test]
    fn rng_fork_stability(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let root = SimRng::new(seed);
        let mut fa1 = root.fork(a);
        let mut fa2 = root.fork(a);
        let mut fb = root.fork(b);
        let xs: Vec<u64> = (0..8).map(|_| fa1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| fa2.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| fb.next_u64()).collect();
        prop_assert_eq!(&xs, &ys);
        prop_assert_ne!(&xs, &zs);
    }

    /// `below(n)` is always within bounds for arbitrary seeds and bounds.
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}
