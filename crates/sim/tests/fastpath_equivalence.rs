//! Equivalence proof for the booking-core fast path: the ring-buffer
//! `IntervalBook` with its O(1) tail-append shortcut must produce grants
//! bit-identical to the original linear implementation for *every* booking
//! pattern — steady-state appends, same-instant bursts, out-of-order
//! backfills and long idle jumps that cross the prune horizon.
//!
//! The reference below is a faithful copy of the seed's `Vec`-based
//! algorithm (gap scan from `partition_point`, drain-based prune behind the
//! same 64-span gate). Randomized patterns come from `SimRng` so failures
//! replay deterministically from the printed seed.

use proptest::prelude::*;
use ros2_sim::{BandwidthServer, ServerPool, SimDuration, SimRng, SimTime};

/// Prune slack mirrored from `resources.rs`.
const PRUNE_SLACK_NS: u64 = 500_000_000;

/// The seed implementation of the booking discipline, kept verbatim as the
/// oracle. A second verbatim copy lives in
/// `crates/bench/src/bin/perf_regression.rs` (`seed_reference::SeedPipe`,
/// the wall-clock baseline); if either copy is ever touched, update both.
#[derive(Clone, Default)]
struct RefBook {
    spans: Vec<(u64, u64)>,
}

impl RefBook {
    fn earliest(&self, from: u64, dur: u64) -> (u64, usize) {
        let mut idx = self.spans.partition_point(|&(_, end)| end <= from);
        let mut candidate = from;
        while idx < self.spans.len() {
            let (start, end) = self.spans[idx];
            if candidate + dur <= start {
                return (candidate, idx);
            }
            candidate = candidate.max(end);
            idx += 1;
        }
        (candidate, idx)
    }

    fn book(&mut self, start: u64, dur: u64, idx: usize) {
        let end = start + dur;
        let prev = idx > 0 && self.spans[idx - 1].1 == start;
        let next = idx < self.spans.len() && self.spans[idx].0 == end;
        match (prev, next) {
            (true, true) => {
                self.spans[idx - 1].1 = self.spans[idx].1;
                self.spans.remove(idx);
            }
            (true, false) => self.spans[idx - 1].1 = end,
            (false, true) => self.spans[idx].0 = start,
            (false, false) => self.spans.insert(idx, (start, end)),
        }
    }

    fn prune(&mut self, cutoff: u64) {
        if self.spans.len() < 64 {
            return;
        }
        let keep_from = self.spans.partition_point(|&(_, end)| end < cutoff);
        if keep_from > 0 {
            self.spans.drain(0..keep_from);
        }
    }
}

/// Reference bandwidth pipe re-implementing the seed `transmit` exactly.
struct RefPipe {
    rate: u64,
    book: RefBook,
    high_water: u64,
}

impl RefPipe {
    fn new(rate: u64) -> Self {
        RefPipe {
            rate,
            book: RefBook::default(),
            high_water: 0,
        }
    }

    fn transmit(&mut self, now: u64, bytes: u64) -> (u64, u64) {
        let dur = SimDuration::for_bytes(bytes, self.rate).as_nanos();
        let (start, idx) = self.book.earliest(now, dur);
        self.book.book(start, dur, idx);
        self.high_water = self.high_water.max(now);
        self.book
            .prune(self.high_water.saturating_sub(PRUNE_SLACK_NS));
        (start, start + dur)
    }
}

/// Reference k-server pool re-implementing the seed `submit` exactly.
struct RefPool {
    books: Vec<RefBook>,
    high_water: u64,
}

impl RefPool {
    fn new(servers: usize) -> Self {
        RefPool {
            books: vec![RefBook::default(); servers],
            high_water: 0,
        }
    }

    fn submit(&mut self, now: u64, dur: u64) -> (u64, u64) {
        let mut best: Option<(u64, usize, usize)> = None;
        for (s, book) in self.books.iter().enumerate() {
            let (start, idx) = book.earliest(now, dur);
            if best.is_none_or(|(b, _, _)| start < b) {
                best = Some((start, s, idx));
                if start == now {
                    break;
                }
            }
        }
        let (start, server, idx) = best.expect("non-empty pool");
        self.books[server].book(start, dur, idx);
        self.high_water = self.high_water.max(now);
        self.books[server].prune(self.high_water.saturating_sub(PRUNE_SLACK_NS));
        (start, start + dur)
    }
}

/// Draws the next submission instant: mostly forward progress (the fast
/// path), with same-instant bursts, bounded out-of-order backfills and
/// occasional long idle jumps that force pruning.
fn next_instant(rng: &mut SimRng, now: u64) -> u64 {
    match rng.below(100) {
        0..=59 => now + rng.below(200_000), // advance ≤200 us
        60..=74 => now,                     // burst at same instant
        75..=89 => now.saturating_sub(rng.below(100_000)), // backfill ≤100 us
        90..=97 => now + 1_000_000 + rng.below(5_000_000), // 1-6 ms gap
        _ => now + 600_000_000 + rng.below(200_000_000), // cross the prune horizon
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `BandwidthServer` grants match the seed algorithm over thousands of
    /// randomized bookings, contended and not.
    #[test]
    fn bandwidth_server_matches_reference(seed in any::<u64>(), rate_mb in 1u64..20_000) {
        let rate = rate_mb * 1_000_000;
        let mut rng = SimRng::new(seed);
        let mut fast = BandwidthServer::new(rate);
        let mut oracle = RefPipe::new(rate);
        let mut now = 0u64;
        for step in 0..3_000u64 {
            now = next_instant(&mut rng, now);
            let bytes = 1 + rng.below(2 << 20);
            let g = fast.transmit(SimTime::from_nanos(now), bytes);
            let (ref_start, ref_finish) = oracle.transmit(now, bytes);
            prop_assert_eq!(
                (g.start.as_nanos(), g.finish.as_nanos()),
                (ref_start, ref_finish),
                "seed {seed} step {step}: grant diverged at t={now}"
            );
        }
        // Steady-state patterns must actually exercise the shortcut.
        prop_assert!(fast.stats().bookings == 3_000);
        prop_assert!(fast.stats().fastpath_hits > 0, "fast path never taken");
    }

    /// `ServerPool` grants match the seed algorithm for every pool size and
    /// booking pattern.
    #[test]
    fn server_pool_matches_reference(seed in any::<u64>(), servers in 1usize..12) {
        let mut rng = SimRng::new(seed);
        let mut fast = ServerPool::new(servers);
        let mut oracle = RefPool::new(servers);
        let mut now = 0u64;
        for step in 0..3_000u64 {
            now = next_instant(&mut rng, now);
            let dur = 1 + rng.below(500_000);
            let g = fast.submit(SimTime::from_nanos(now), SimDuration::from_nanos(dur));
            let (ref_start, ref_finish) = oracle.submit(now, dur);
            prop_assert_eq!(
                (g.start.as_nanos(), g.finish.as_nanos()),
                (ref_start, ref_finish),
                "seed {seed} step {step}: grant diverged at t={now} ({servers} servers)"
            );
        }
        prop_assert!(fast.stats().bookings == 3_000);
    }

    /// Batched tail booking (`book_batch`) equals the per-segment loop it
    /// replaces whenever its precondition (pipe idle at/after start) holds.
    #[test]
    fn book_batch_matches_segment_loop(seed in any::<u64>(), segs in 1u64..24) {
        let rate = 12_500_000_000; // the 100 Gbps port
        let mut rng = SimRng::new(seed);
        let seg_bytes = 128 * 1024;
        let rem_bytes = 1 + rng.below(seg_bytes);
        let start = rng.below(1_000_000_000);

        // Per-segment loop on one pipe.
        let mut loop_pipe = BandwidthServer::new(rate);
        let mut finish = 0u64;
        let total = (segs - 1) * seg_bytes + rem_bytes;
        let mut remaining = total;
        while remaining > 0 {
            let chunk = remaining.min(seg_bytes);
            let g = loop_pipe.transmit(SimTime::from_nanos(start), chunk);
            finish = finish.max(g.finish.as_nanos());
            remaining -= chunk;
        }

        // One closed-form booking on another.
        let mut batch_pipe = BandwidthServer::new(rate);
        let dur = batch_pipe.service_time(seg_bytes) * (segs - 1)
            + batch_pipe.service_time(rem_bytes);
        let g = batch_pipe.book_batch(
            SimTime::from_nanos(start),
            SimTime::from_nanos(start),
            dur,
            total,
            segs,
        );
        prop_assert_eq!(g.finish.as_nanos(), finish, "seed {seed}: {segs} segments");
        prop_assert_eq!(batch_pipe.bytes_served(), loop_pipe.bytes_served());
        prop_assert_eq!(batch_pipe.busy_time(), loop_pipe.busy_time());
        prop_assert_eq!(batch_pipe.backlog(SimTime::ZERO), loop_pipe.backlog(SimTime::ZERO));
    }
}

/// Long steady-state run: the ring buffer must keep pruning (bounded span
/// count) while grants stay exact; ~100 % of bookings take the fast path.
#[test]
fn steady_state_is_fastpath_and_bounded() {
    let mut pipe = BandwidthServer::new(1_000_000_000);
    let mut oracle = RefPipe::new(1_000_000_000);
    let mut now = 0u64;
    for _ in 0..200_000u64 {
        // Spaced-out bookings: each arrives after the pipe drained.
        now += 20_000;
        let g = pipe.transmit(SimTime::from_nanos(now), 1000);
        let (rs, rf) = oracle.transmit(now, 1000);
        assert_eq!((g.start.as_nanos(), g.finish.as_nanos()), (rs, rf));
    }
    let stats = pipe.stats();
    assert_eq!(stats.bookings, 200_000);
    assert_eq!(
        stats.fastpath_hits, 200_000,
        "every spaced booking must take the tail-append shortcut"
    );
    assert!(stats.hit_rate() > 0.99);
}
