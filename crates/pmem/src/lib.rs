//! # ros2-pmem — PMDK-style storage-class-memory tier
//!
//! The DAOS I/O engine accesses SCM through PMDK (§3.3). This crate supplies
//! the analogue: a persistent byte heap with stable object identifiers
//! ([`PmemOid`]), a size-class allocator, undo-log transactions with real
//! rollback semantics, and an Optane-class timing model for persists.
//!
//! VOS (in `ros2-daos`) keeps object metadata and small records here, and
//! NVMe extents hold bulk data — the same split DAOS uses.
//!
//! ## Example
//!
//! ```
//! use ros2_pmem::{PmemPool, ScmModel};
//!
//! let mut pool = PmemPool::new(1 << 20, ScmModel::optane_class());
//! let oid = pool.alloc(64).unwrap();
//! pool.tx_begin().unwrap();
//! pool.tx_add_range(oid, 0, 5).unwrap();
//! pool.write(oid, 0, b"hello").unwrap();
//! pool.tx_abort().unwrap(); // rollback really restores
//! assert_eq!(&pool.read(oid, 0, 5).unwrap()[..], &[0; 5]);
//! ```

#![warn(missing_docs)]

pub mod heap;
pub mod pool;

pub use heap::{Heap, PmemError, PmemOid};
pub use pool::{PmemPool, ScmModel};
