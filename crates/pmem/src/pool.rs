//! The transactional persistent pool: PMDK `pmemobj`-style undo-log
//! transactions over the heap, plus the SCM timing model.
//!
//! DAOS stores VOS metadata and small I/O in SCM; crash-consistent updates
//! there rely on transactions. The undo log here is functional: aborting a
//! transaction really restores the snapshotted ranges, and a property test
//! drives random interleavings against a model.

use bytes::Bytes;
use ros2_sim::{SimDuration, SimTime};

use crate::heap::{Heap, PmemError, PmemOid};

/// Timing model for the SCM tier (Optane-PMem-class DIMMs).
#[derive(Copy, Clone, Debug)]
pub struct ScmModel {
    /// Load latency for a cacheline-sized access.
    pub read_latency: SimDuration,
    /// Persist (store + flush) latency.
    pub write_latency: SimDuration,
    /// Sequential read bandwidth, B/s.
    pub read_bw: u64,
    /// Sequential write bandwidth, B/s.
    pub write_bw: u64,
}

impl ScmModel {
    /// Default calibration: ~170 ns loads, ~450 ns persists, 6/2 GB/s.
    pub fn optane_class() -> Self {
        ScmModel {
            read_latency: SimDuration::from_nanos(170),
            write_latency: SimDuration::from_nanos(450),
            read_bw: 6_000_000_000,
            write_bw: 2_000_000_000,
        }
    }

    /// Time to read `bytes` from SCM.
    pub fn read_cost(&self, bytes: u64) -> SimDuration {
        self.read_latency + SimDuration::for_bytes(bytes, self.read_bw)
    }

    /// Time to persist `bytes` to SCM.
    pub fn write_cost(&self, bytes: u64) -> SimDuration {
        self.write_latency + SimDuration::for_bytes(bytes, self.write_bw)
    }
}

/// One undo-log record: the original contents of a snapshotted range.
#[derive(Debug)]
struct UndoRecord {
    offset: u64,
    original: Bytes,
}

/// A persistent memory pool with transactions (PMDK `pmemobj` analogue).
#[derive(Debug)]
pub struct PmemPool {
    heap: Heap,
    model: ScmModel,
    undo: Option<Vec<UndoRecord>>,
    /// OIDs allocated inside the open transaction (freed on abort).
    tx_allocs: Vec<PmemOid>,
    tx_commits: u64,
    tx_aborts: u64,
}

impl PmemPool {
    /// Creates a pool of `capacity` bytes with the given timing model.
    pub fn new(capacity: u64, model: ScmModel) -> Self {
        PmemPool {
            heap: Heap::new(capacity),
            model,
            undo: None,
            tx_allocs: Vec::new(),
            tx_commits: 0,
            tx_aborts: 0,
        }
    }

    /// The timing model.
    pub fn model(&self) -> &ScmModel {
        &self.model
    }

    /// Allocates `size` zeroed bytes. Inside a transaction the allocation
    /// is rolled back on abort.
    pub fn alloc(&mut self, size: u64) -> Result<PmemOid, PmemError> {
        let oid = self.heap.alloc(size)?;
        if self.undo.is_some() {
            self.tx_allocs.push(oid);
        }
        Ok(oid)
    }

    /// Frees an object. (Frees inside a transaction are applied eagerly;
    /// real PMDK defers them to commit — callers in this codebase free only
    /// after commit points, which tests assert.)
    pub fn free(&mut self, oid: PmemOid) {
        self.heap.free(oid);
    }

    /// Reads `len` bytes from an object at byte `at` within it (zero-copy
    /// when the range lies inside one prior write).
    pub fn read(&mut self, oid: PmemOid, at: u64, len: usize) -> Result<Bytes, PmemError> {
        if at + len as u64 > oid.size {
            return Err(PmemError::BadAddress);
        }
        self.heap.read(oid.offset + at, len)
    }

    /// Writes `data` into an object at byte `at`. If a transaction is open
    /// the range must have been snapshotted with [`PmemPool::tx_add_range`]
    /// first (enforced in debug builds by convention, not trapped).
    pub fn write(&mut self, oid: PmemOid, at: u64, data: &[u8]) -> Result<(), PmemError> {
        if at + data.len() as u64 > oid.size {
            return Err(PmemError::BadAddress);
        }
        self.heap.write(oid.offset + at, data)
    }

    /// Zero-copy write into an object: the heap adopts the `Bytes` handle.
    pub fn write_bytes(&mut self, oid: PmemOid, at: u64, data: &Bytes) -> Result<(), PmemError> {
        if at + data.len() as u64 > oid.size {
            return Err(PmemError::BadAddress);
        }
        self.heap.write_bytes(oid.offset + at, data)
    }

    /// The CRC32C of object range `[at, at+len)` (cached per-chunk CRCs —
    /// the fetch-verify path combines these instead of rescanning).
    pub fn crc_of_range(&mut self, oid: PmemOid, at: u64, len: u64) -> Result<u32, PmemError> {
        if at + len > oid.size {
            return Err(PmemError::BadAddress);
        }
        self.heap.crc_of_range(oid.offset + at, len)
    }

    /// Seeds the chunk-CRC cache of a freshly written object range with
    /// CRCs the writer computed anyway — the object's grid is
    /// extent-relative, so chunk `i` covers object bytes
    /// `[at + i*CRC_CHUNK, ...)` of the write that placed them.
    pub fn seed_crcs<I>(&mut self, oid: PmemOid, at: u64, crcs: I)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        self.heap.seed_crcs(oid.offset + at, crcs);
    }

    /// Data-plane (copy vs zero-copy, CRC scan vs combine) counters.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        self.heap.data_plane_stats()
    }

    /// Opens a transaction. Nesting is not supported.
    pub fn tx_begin(&mut self) -> Result<(), PmemError> {
        if self.undo.is_some() {
            return Err(PmemError::TxState);
        }
        self.undo = Some(Vec::new());
        self.tx_allocs.clear();
        Ok(())
    }

    /// Snapshots `[at, at+len)` of `oid` into the undo log.
    pub fn tx_add_range(&mut self, oid: PmemOid, at: u64, len: usize) -> Result<(), PmemError> {
        if at + len as u64 > oid.size {
            return Err(PmemError::BadAddress);
        }
        let original = self.heap.read(oid.offset + at, len)?;
        match &mut self.undo {
            Some(log) => {
                log.push(UndoRecord {
                    offset: oid.offset + at,
                    original,
                });
                Ok(())
            }
            None => Err(PmemError::TxState),
        }
    }

    /// Commits: discards the undo log, keeping all writes.
    /// Returns the persist cost of the committed log (drain + flushes).
    pub fn tx_commit(&mut self) -> Result<SimDuration, PmemError> {
        let log = self.undo.take().ok_or(PmemError::TxState)?;
        let logged: u64 = log.iter().map(|r| r.original.len() as u64).sum();
        self.tx_allocs.clear();
        self.tx_commits += 1;
        // Undo-log records are persisted before the data writes; charge one
        // persist pass over the logged bytes.
        Ok(self.model.write_cost(logged.max(64)))
    }

    /// Aborts: restores every snapshotted range (in reverse order) and
    /// frees transaction-local allocations.
    pub fn tx_abort(&mut self) -> Result<(), PmemError> {
        let log = self.undo.take().ok_or(PmemError::TxState)?;
        for rec in log.into_iter().rev() {
            self.heap
                .write(rec.offset, &rec.original)
                .expect("undo target must remain valid");
        }
        for oid in std::mem::take(&mut self.tx_allocs) {
            self.heap.free(oid);
        }
        self.tx_aborts += 1;
        Ok(())
    }

    /// Whether a transaction is currently open.
    pub fn in_tx(&self) -> bool {
        self.undo.is_some()
    }

    /// Completed transaction counts `(commits, aborts)`.
    pub fn tx_counts(&self) -> (u64, u64) {
        (self.tx_commits, self.tx_aborts)
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.heap.live_bytes()
    }

    /// Pool capacity.
    pub fn capacity(&self) -> u64 {
        self.heap.capacity()
    }

    /// The completion time of a timed read of `bytes` starting at `now`.
    pub fn timed_read(&self, now: SimTime, bytes: u64) -> SimTime {
        now + self.model.read_cost(bytes)
    }

    /// The completion time of a timed persist of `bytes` starting at `now`.
    pub fn timed_write(&self, now: SimTime, bytes: u64) -> SimTime {
        now + self.model.write_cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PmemPool {
        PmemPool::new(1 << 24, ScmModel::optane_class())
    }

    #[test]
    fn commit_keeps_writes() {
        let mut p = pool();
        let oid = p.alloc(64).unwrap();
        p.write(oid, 0, b"before").unwrap();
        p.tx_begin().unwrap();
        p.tx_add_range(oid, 0, 6).unwrap();
        p.write(oid, 0, b"after!").unwrap();
        p.tx_commit().unwrap();
        assert_eq!(&p.read(oid, 0, 6).unwrap()[..], b"after!");
        assert_eq!(p.tx_counts(), (1, 0));
    }

    #[test]
    fn abort_restores_snapshots() {
        let mut p = pool();
        let oid = p.alloc(64).unwrap();
        p.write(oid, 0, b"before").unwrap();
        p.tx_begin().unwrap();
        p.tx_add_range(oid, 0, 6).unwrap();
        p.write(oid, 0, b"after!").unwrap();
        p.tx_abort().unwrap();
        assert_eq!(&p.read(oid, 0, 6).unwrap()[..], b"before");
        assert_eq!(p.tx_counts(), (0, 1));
    }

    #[test]
    fn abort_frees_tx_allocations() {
        let mut p = pool();
        p.tx_begin().unwrap();
        let oid = p.alloc(128).unwrap();
        assert_eq!(p.live_bytes(), 128);
        p.tx_abort().unwrap();
        assert_eq!(p.live_bytes(), 0);
        // The freed block is recyclable.
        let again = p.alloc(128).unwrap();
        assert_eq!(again.offset, oid.offset);
    }

    #[test]
    fn overlapping_snapshots_restore_in_reverse() {
        let mut p = pool();
        let oid = p.alloc(16).unwrap();
        p.write(oid, 0, &[1u8; 16]).unwrap();
        p.tx_begin().unwrap();
        p.tx_add_range(oid, 0, 8).unwrap();
        p.write(oid, 0, &[2u8; 8]).unwrap();
        p.tx_add_range(oid, 4, 8).unwrap(); // snapshots [2,2,2,2,1,1,1,1]
        p.write(oid, 4, &[3u8; 8]).unwrap();
        p.tx_abort().unwrap();
        assert_eq!(&p.read(oid, 0, 16).unwrap()[..], &[1u8; 16]);
    }

    #[test]
    fn tx_state_errors() {
        let mut p = pool();
        assert_eq!(p.tx_commit().unwrap_err(), PmemError::TxState);
        assert_eq!(p.tx_abort().unwrap_err(), PmemError::TxState);
        p.tx_begin().unwrap();
        assert_eq!(p.tx_begin().unwrap_err(), PmemError::TxState);
        assert!(p.in_tx());
        p.tx_commit().unwrap();
        assert!(!p.in_tx());
    }

    #[test]
    fn object_bounds_enforced() {
        let mut p = pool();
        let oid = p.alloc(10).unwrap();
        assert_eq!(p.write(oid, 8, &[0; 4]).unwrap_err(), PmemError::BadAddress);
        assert_eq!(p.read(oid, 8, 4).unwrap_err(), PmemError::BadAddress);
        p.tx_begin().unwrap();
        assert_eq!(
            p.tx_add_range(oid, 8, 4).unwrap_err(),
            PmemError::BadAddress
        );
    }

    #[test]
    fn persist_cost_scales_with_bytes() {
        let m = ScmModel::optane_class();
        assert!(m.write_cost(1 << 20) > m.write_cost(64));
        assert!(m.read_cost(64) < m.write_cost(64));
        let p = pool();
        let t = p.timed_write(SimTime::ZERO, 4096);
        assert!(t > p.timed_read(SimTime::ZERO, 4096));
    }
}
