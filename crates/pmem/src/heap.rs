//! The persistent heap: sparse byte store + size-class allocator.
//!
//! Mirrors the shape of PMDK's `pmemobj` pool: objects are allocated from a
//! persistent heap and addressed by stable offsets (OIDs). Contents live in
//! a zero-copy extent store so a 128 GiB SCM tier costs only what is
//! actually resident — and whole-record writes adopt the caller's `Bytes`
//! handle instead of copying page by page.

use bytes::Bytes;
use ros2_buf::{DataPlaneStats, ExtentStore};

/// Page granularity for residency accounting.
const PAGE: usize = 4096;
/// Smallest allocation size class (bytes).
const MIN_CLASS: u64 = 64;
/// Number of power-of-two size classes (64 B .. 2 GiB).
const CLASSES: usize = 26;

/// A stable reference to an allocated object in the pool (PMDK `PMEMoid`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PmemOid {
    /// Byte offset of the object within the pool.
    pub offset: u64,
    /// Usable size of the object in bytes.
    pub size: u64,
}

/// Errors from heap operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PmemError {
    /// The pool cannot satisfy the allocation.
    OutOfSpace,
    /// An access fell outside the pool or outside a live object.
    BadAddress,
    /// Transaction misuse (commit/abort without begin, nested begin).
    TxState,
}

/// The persistent byte store with a size-class allocator.
#[derive(Debug)]
pub struct Heap {
    capacity: u64,
    store: ExtentStore,
    /// Bump frontier for fresh allocations.
    frontier: u64,
    /// Per-class free lists of previously freed offsets.
    free_lists: Vec<Vec<u64>>,
    live_bytes: u64,
    allocs: u64,
    frees: u64,
}

fn class_of(size: u64) -> usize {
    let rounded = size.max(MIN_CLASS).next_power_of_two();
    (rounded.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize
}

fn class_size(class: usize) -> u64 {
    MIN_CLASS << class
}

impl Heap {
    /// Creates a pool of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Heap {
            capacity,
            store: ExtentStore::new(),
            frontier: PAGE as u64, // offset 0 is reserved (null OID)
            free_lists: vec![Vec::new(); CLASSES],
            live_bytes: 0,
            allocs: 0,
            frees: 0,
        }
    }

    /// Allocates `size` bytes, zero-initialized.
    pub fn alloc(&mut self, size: u64) -> Result<PmemOid, PmemError> {
        if size == 0 || size > self.capacity {
            return Err(PmemError::OutOfSpace);
        }
        let class = class_of(size);
        if class >= CLASSES {
            return Err(PmemError::OutOfSpace);
        }
        let block = class_size(class);
        let offset = if let Some(off) = self.free_lists[class].pop() {
            // Recycled block: must read as zero again.
            self.zero(off, block);
            off
        } else {
            let off = self.frontier;
            if off + block > self.capacity {
                return Err(PmemError::OutOfSpace);
            }
            self.frontier += block;
            off
        };
        self.live_bytes += block;
        self.allocs += 1;
        Ok(PmemOid { offset, size })
    }

    /// Frees an object, returning its block to the free list.
    pub fn free(&mut self, oid: PmemOid) {
        let class = class_of(oid.size);
        self.free_lists[class].push(oid.offset);
        self.live_bytes = self.live_bytes.saturating_sub(class_size(class));
        self.frees += 1;
    }

    /// Reads `len` bytes at absolute `offset` (zero-copy when the range
    /// lies inside one prior write).
    pub fn read(&mut self, offset: u64, len: usize) -> Result<Bytes, PmemError> {
        if offset + len as u64 > self.capacity {
            return Err(PmemError::BadAddress);
        }
        Ok(self.store.read(offset, len))
    }

    /// Writes a borrowed slice at absolute `offset` (one copy).
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), PmemError> {
        if offset + data.len() as u64 > self.capacity {
            return Err(PmemError::BadAddress);
        }
        self.store.write_slice(offset, data);
        Ok(())
    }

    /// Zero-copy write: adopts the caller's `Bytes` handle.
    pub fn write_bytes(&mut self, offset: u64, data: &Bytes) -> Result<(), PmemError> {
        if offset + data.len() as u64 > self.capacity {
            return Err(PmemError::BadAddress);
        }
        self.store.write(offset, data.clone());
        Ok(())
    }

    /// The CRC32C of stored range `[offset, offset+len)` (cached chunk
    /// CRCs; holes fold in as closed-form zero runs).
    pub fn crc_of_range(&mut self, offset: u64, len: u64) -> Result<u32, PmemError> {
        if offset + len > self.capacity {
            return Err(PmemError::BadAddress);
        }
        Ok(self.store.crc_of_range(offset, len))
    }

    /// Seeds the chunk-CRC cache of the extent written at `offset` with
    /// CRCs the writer already computed (see
    /// [`ros2_buf::ExtentStore::seed_crcs`]).
    pub fn seed_crcs<I>(&mut self, offset: u64, crcs: I)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        self.store.seed_crcs(offset, crcs);
    }

    /// Data-plane (copy vs zero-copy, CRC scan vs combine) counters.
    pub fn data_plane_stats(&self) -> DataPlaneStats {
        self.store.stats()
    }

    fn zero(&mut self, offset: u64, len: u64) {
        self.store.discard(offset, len);
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
    /// Bytes currently allocated (by block size).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }
    /// Lifetime allocation count.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }
    /// Lifetime free count.
    pub fn frees(&self) -> u64 {
        self.frees
    }
    /// Resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.store.covered_pages(PAGE as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_up() {
        assert_eq!(class_of(1), 0);
        assert_eq!(class_size(class_of(1)), 64);
        assert_eq!(class_size(class_of(65)), 128);
        assert_eq!(class_size(class_of(4096)), 4096);
        assert_eq!(class_size(class_of(4097)), 8192);
    }

    #[test]
    fn alloc_write_read_round_trip() {
        let mut h = Heap::new(1 << 20);
        let oid = h.alloc(100).unwrap();
        h.write(oid.offset, b"persistent!").unwrap();
        assert_eq!(&h.read(oid.offset, 11).unwrap()[..], b"persistent!");
    }

    #[test]
    fn fresh_allocations_are_zeroed() {
        let mut h = Heap::new(1 << 20);
        let a = h.alloc(128).unwrap();
        h.write(a.offset, &[0xFF; 128]).unwrap();
        h.free(a);
        let b = h.alloc(128).unwrap();
        assert_eq!(b.offset, a.offset, "block recycled");
        assert!(h.read(b.offset, 128).unwrap().iter().all(|&x| x == 0));
    }

    #[test]
    fn allocations_never_overlap() {
        let mut h = Heap::new(1 << 20);
        let oids: Vec<_> = (0..64).map(|_| h.alloc(100).unwrap()).collect();
        for (i, a) in oids.iter().enumerate() {
            for b in &oids[i + 1..] {
                let a_end = a.offset + class_size(class_of(a.size));
                let b_end = b.offset + class_size(class_of(b.size));
                assert!(
                    a_end <= b.offset || b_end <= a.offset,
                    "{a:?} overlaps {b:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_space_is_reported() {
        let mut h = Heap::new(64 * 1024);
        let mut got = 0;
        while h.alloc(4096).is_ok() {
            got += 1;
        }
        assert!(got > 0 && got <= 16);
        assert_eq!(h.alloc(4096).unwrap_err(), PmemError::OutOfSpace);
        assert_eq!(h.alloc(0).unwrap_err(), PmemError::OutOfSpace);
    }

    #[test]
    fn bad_address_rejected() {
        let mut h = Heap::new(4096 * 4);
        assert_eq!(h.read(4096 * 4, 1).unwrap_err(), PmemError::BadAddress);
        assert_eq!(
            h.write(4096 * 3, &[0; 4097]).unwrap_err(),
            PmemError::BadAddress
        );
    }

    #[test]
    fn live_bytes_track_alloc_free() {
        let mut h = Heap::new(1 << 20);
        let oid = h.alloc(1000).unwrap();
        assert_eq!(h.live_bytes(), 1024);
        h.free(oid);
        assert_eq!(h.live_bytes(), 0);
        assert_eq!(h.allocs(), 1);
        assert_eq!(h.frees(), 1);
    }
}
