//! Fault-injection plans for the pipelined client's recovery ladder.
//!
//! A [`FaultPlan`] is a declarative chaos schedule: which engines die and
//! when (in client-op counts, so the kill lands mid-flight regardless of
//! the workload's timing), which connections silently eat traffic, how
//! slow a "slow" engine is, and — the heart of the map race — how long a
//! RAS membership event takes to *reach* each client stack. Everything in
//! the plan is deterministic: the same plan against the same workload
//! replays bit-identically, which is what lets the chaos property suite
//! compare whole runs for equality.
//!
//! The empty plan ([`FaultPlan::none`], also `Default`) is the pinned
//! baseline: with no faults scheduled, every client's cached map equals
//! the live map, no fence ever fires, and all pre-existing results are
//! bit-identical to the fault-oblivious code.

use ros2_sim::SimDuration;

/// One scheduled engine kill, triggered by client progress rather than
/// wall-clock: the kill fires when the client stack has issued
/// `after_client_ops` data-plane ops, so it lands between submissions of
/// a pipelined queue ("mid-flight") deterministically.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScheduledKill {
    /// Fire once the client's op counter reaches this value.
    pub after_client_ops: u64,
    /// The engine slot to kill.
    pub slot: usize,
}

/// One scheduled bit-rot injection, keyed by client progress like
/// [`ScheduledKill`]: when the client's op counter reaches
/// `after_client_ops`, one stored extent on engine `slot` is silently
/// corrupted in place — recorded checksums stay intact, so only a
/// media-vs-recorded CRC cross-check (the scrub pass) can see it. The
/// victim object is `object_index` into the engine's sorted object list
/// (mod its length), making the choice deterministic for any workload.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScheduledCorruption {
    /// Fire once the client's op counter reaches this value.
    pub after_client_ops: u64,
    /// The engine slot whose replica rots.
    pub slot: usize,
    /// Index into the engine's sorted object list (taken mod its length).
    pub object_index: usize,
}

/// One slow-engine injection: `slot` still answers every request, just
/// `extra` later — the "engine slow" arm of the timeout classifier.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineStall {
    /// The slot to slow down.
    pub slot: usize,
    /// Extra service latency added to every completion.
    pub extra: SimDuration,
}

/// A deterministic chaos schedule threaded through `Ros2System` and the
/// cluster FIO world.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// How long a RAS membership event takes to reach the client stack
    /// after the kill commits. Zero means delivery at the kill instant
    /// (still applied only when the client next polls its mailbox — the
    /// push is asynchronous even when it is fast).
    pub ras_delay: SimDuration,
    /// Engine kills, fired by client-op progress. Kills fire in order;
    /// because only one unrebuilt failure may be outstanding, a second
    /// kill before a rebuild is a plan error surfaced at fire time.
    pub kills: Vec<ScheduledKill>,
    /// Connections to black-hole from launch: the engine stays Up in the
    /// map but requests to it vanish, detectable only by deadline expiry.
    pub blackholes: Vec<usize>,
    /// Slow engines, applied from launch.
    pub stalls: Vec<EngineStall>,
    /// Bit-rot injections, fired by client-op progress in order. Unlike
    /// kills these may overlap freely: corruption is silent and the scrub
    /// service is responsible for finding every instance.
    pub bitrot: Vec<ScheduledCorruption>,
}

impl FaultPlan {
    /// The empty plan: no kills, no black holes, no stalls, immediate RAS
    /// delivery. Behaviour under this plan is pinned bit-identical to the
    /// fault-oblivious system.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.ras_delay == SimDuration::ZERO
            && self.kills.is_empty()
            && self.blackholes.is_empty()
            && self.stalls.is_empty()
            && self.bitrot.is_empty()
    }

    /// Convenience: a single mid-flight kill of `slot` after
    /// `after_client_ops` ops, with RAS delivery delayed by `ras_delay`.
    pub fn kill_after(slot: usize, after_client_ops: u64, ras_delay: SimDuration) -> Self {
        FaultPlan {
            ras_delay,
            kills: vec![ScheduledKill {
                after_client_ops,
                slot,
            }],
            ..FaultPlan::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
        let plan = FaultPlan::kill_after(1, 4, SimDuration::from_micros(500));
        assert!(!plan.is_empty());
        assert_eq!(plan.kills.len(), 1);
        assert_eq!(plan.kills[0].slot, 1);
        // Delay alone is an injection too: it changes when deliveries land.
        let delay_only = FaultPlan {
            ras_delay: SimDuration::from_micros(1),
            ..FaultPlan::default()
        };
        assert!(!delay_only.is_empty());
        // So is silent corruption, even though no client ever fails on it.
        let rot_only = FaultPlan {
            bitrot: vec![ScheduledCorruption {
                after_client_ops: 8,
                slot: 2,
                object_index: 0,
            }],
            ..FaultPlan::default()
        };
        assert!(!rot_only.is_empty());
    }
}
