//! # ros2-core — the ROS2 system
//!
//! The paper's primary contribution, assembled: an RDMA-first,
//! POSIX-compatible object storage deployment whose DAOS client runs on an
//! NVIDIA BlueField-3 SmartNIC, with a lightweight gRPC control plane
//! (session, namespace, capability exchange) split from a UCX/libfabric
//! data plane over TCP or RDMA, and the DAOS I/O engine unchanged on the
//! storage server.
//!
//! ## Quickstart
//!
//! ```
//! use bytes::Bytes;
//! use ros2_core::{Ros2Config, Ros2System};
//!
//! let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
//! sys.mkdir("/data").unwrap();
//! let mut file = sys.create("/data/hello.bin").unwrap().value;
//! sys.write(&mut file, 0, Bytes::from_static(b"rdma-first")).unwrap();
//! let read = sys.read(&file, 0, 10).unwrap();
//! assert_eq!(&read.value[..], b"rdma-first");
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod system;

pub use fault::{EngineStall, FaultPlan, ScheduledCorruption, ScheduledKill};
pub use system::{
    ClientStack, ClusterConfig, Ros2Config, Ros2Error, Ros2System, SystemMetrics, Timed,
    CLIENT_NODE, STORAGE_NODE,
};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use ros2_hw::{ClientPlacement, Transport};
    use ros2_verbs::MemoryDomain;

    #[test]
    fn launch_performs_control_handshake() {
        let sys = Ros2System::launch(Ros2Config::default()).unwrap();
        // Hello + PoolConnect + ContOpen + DfsMount = 4 control calls, and
        // the handshake consumed real control-plane time.
        assert_eq!(sys.metrics().control_calls, 4);
        assert!(sys.now() > ros2_sim::SimTime::ZERO);
    }

    #[test]
    fn file_round_trip_on_every_deployment() {
        for transport in [Transport::Tcp, Transport::Rdma] {
            for placement in [ClientPlacement::Host, ClientPlacement::Dpu] {
                let mut sys = Ros2System::launch(Ros2Config {
                    transport,
                    placement,
                    ..Ros2Config::default()
                })
                .unwrap();
                let mut f = sys.create("/ckpt.bin").unwrap().value;
                let data = Bytes::from(vec![0xA5; 3 << 20]);
                sys.write(&mut f, 0, data.clone()).unwrap();
                let back = sys.read(&f, 0, 3 << 20).unwrap().value;
                assert_eq!(back, data, "{transport:?}/{placement:?}");
            }
        }
    }

    #[test]
    fn namespace_operations_work() {
        let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
        sys.mkdir("/models").unwrap();
        sys.create("/models/a").unwrap();
        sys.create("/models/b").unwrap();
        let names = sys.readdir("/models").unwrap().value;
        assert_eq!(names, vec!["a", "b"]);
        let st = sys.stat("/models/a").unwrap().value;
        assert_eq!(st.size, 0);
        sys.unlink("/models/a").unwrap();
        assert_eq!(sys.readdir("/models").unwrap().value, vec!["b"]);
    }

    #[test]
    fn clock_advances_and_latencies_are_positive() {
        let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
        let t0 = sys.now();
        let mut f = sys.create("/f").unwrap().value;
        let w = sys
            .write(&mut f, 0, Bytes::from(vec![1u8; 1 << 20]))
            .unwrap();
        assert!(w.latency > ros2_sim::SimDuration::ZERO);
        assert!(sys.now() > t0);
    }

    #[test]
    fn gpu_direct_requires_rdma() {
        let err = Ros2System::launch(Ros2Config {
            transport: Transport::Tcp,
            buffer_domain: MemoryDomain::GpuHbm,
            ..Ros2Config::default()
        });
        assert!(matches!(err, Err(Ros2Error::Config(_))));
        // And works on RDMA.
        let sys = Ros2System::launch(Ros2Config {
            transport: Transport::Rdma,
            buffer_domain: MemoryDomain::GpuHbm,
            ..Ros2Config::default()
        });
        assert!(sys.is_ok());
    }

    #[test]
    fn inline_crypto_counts_bytes() {
        let mut sys = Ros2System::launch(Ros2Config {
            inline_service: ros2_dpu::InlineService::Crypto,
            ..Ros2Config::default()
        })
        .unwrap();
        let mut f = sys.create("/enc").unwrap().value;
        sys.write(&mut f, 0, Bytes::from(vec![7u8; 1 << 20]))
            .unwrap();
        sys.read(&f, 0, 1 << 20).unwrap();
        assert!(sys.metrics().inline_bytes >= 2 << 20);
    }

    #[test]
    fn qos_throttles_a_limited_tenant() {
        let mut sys = Ros2System::launch(Ros2Config {
            qos: ros2_dpu::QosLimits {
                ops_per_sec: 100,
                bytes_per_sec: 10 << 20,
                burst: (2, 1 << 20),
            },
            ..Ros2Config::default()
        })
        .unwrap();
        let mut f = sys.create("/throttled").unwrap().value;
        for i in 0..8 {
            sys.write(&mut f, i * 4096, Bytes::from(vec![0u8; 4096]))
                .unwrap();
        }
        let t = sys.tenants().tenant(&sys.config.tenant).unwrap();
        assert!(t.qos.throttled > 0, "rate limiter must have engaged");
    }

    #[test]
    fn split_paths() {
        let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
        assert!(sys.create("no-slash").is_err());
        assert!(sys.mkdir("/a").is_ok());
        assert!(sys.mkdir("/a/b").is_ok());
        assert!(sys.create("/a/b/c").is_ok());
        assert!(sys.open("/a/b/c").is_ok());
    }
}
