//! The assembled ROS2 system: testbed construction, control-plane
//! handshake, and a POSIX-flavoured file API over the offloaded data plane.
//!
//! [`Ros2System::launch`] builds the paper's architecture end to end:
//!
//! 1. the fabric (client host *or* BlueField-3 ↔ 100 Gbps switch ↔ storage
//!    server) on the selected transport;
//! 2. the unmodified DAOS engine on the storage server;
//! 3. the DPU agent with the tenant's PD, QoS and rkey-scope policy;
//! 4. the gRPC control handshake — Hello, PoolConnect, ContOpen, DfsMount,
//!    GetCapability — over the control channel (no payload bytes here);
//! 5. the DAOS client and DFS mount on the chosen placement.
//!
//! Every file operation advances the system's virtual clock and reports its
//! latency, so applications (the examples) can reason about delivered
//! performance without running the FIO harness.

use bytes::Bytes;
use ros2_ctl::{ControlError, ControlRequest, ControlResponse};
use ros2_daos::{DaosClient, DaosCostModel, DaosEngine};
use ros2_dfs::{Dfs, DfsError, DfsObj, DfsSession, FileStat};
use ros2_dpu::{default_control, DpuAgent, InlineService, QosLimits, TenantManager};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{
    gbps, ClientPlacement, CoreClass, CpuComplement, DpuTcpRxModel, NicModel, Transport,
};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{SimDuration, SimTime};
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

/// Deployment configuration (the knobs the paper sweeps, plus extensions).
#[derive(Clone, Debug)]
pub struct Ros2Config {
    /// Data-plane transport (§3.4).
    pub transport: Transport,
    /// Where the DAOS client runs.
    pub placement: ClientPlacement,
    /// NVMe drives on the storage server (the paper uses 1 or 4).
    pub ssds: usize,
    /// Client jobs (connections/EQs).
    pub jobs: usize,
    /// DFS chunk size.
    pub chunk_size: u64,
    /// Device backing mode (Stored for correctness, Null for sweeps).
    pub data_mode: DataMode,
    /// Tenant identity.
    pub tenant: String,
    /// Inline service on the DPU byte path.
    pub inline_service: InlineService,
    /// Where client staging buffers live. `DpuDram` is the prototype
    /// (§3.2: "all payloads currently terminate in DPU DRAM");
    /// `GpuHbm` enables the §3.5 GPUDirect extension.
    pub buffer_domain: MemoryDomain,
    /// Per-job staging-buffer size.
    pub buffer_len: u64,
    /// Tenant QoS.
    pub qos: QosLimits,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for Ros2Config {
    fn default() -> Self {
        Ros2Config {
            transport: Transport::Rdma,
            placement: ClientPlacement::Dpu,
            ssds: 1,
            jobs: 4,
            chunk_size: 1 << 20,
            data_mode: DataMode::Stored,
            tenant: "default".into(),
            inline_service: InlineService::None,
            buffer_domain: MemoryDomain::DpuDram,
            buffer_len: 4 << 20,
            qos: QosLimits::unlimited(),
            seed: 0x40552,
        }
    }
}

/// Launch/runtime failures.
#[derive(Debug)]
pub enum Ros2Error {
    /// Control-plane failure during handshake.
    Control(ControlError),
    /// Data-plane / storage failure.
    Dfs(DfsError),
    /// Configuration rejected (e.g. GPU buffers without peermem support).
    Config(String),
}

impl From<DfsError> for Ros2Error {
    fn from(e: DfsError) -> Self {
        Ros2Error::Dfs(e)
    }
}

/// The node ids used by every ROS2 deployment.
pub const CLIENT_NODE: NodeId = NodeId(0);
/// See [`CLIENT_NODE`].
pub const STORAGE_NODE: NodeId = NodeId(1);

/// A running ROS2 deployment.
pub struct Ros2System {
    /// The configuration it was launched with.
    pub config: Ros2Config,
    /// The data-plane fabric.
    pub fabric: Fabric,
    /// The unmodified storage-server engine.
    pub engine: DaosEngine,
    /// The (possibly DPU-resident) DAOS client.
    pub client: DaosClient,
    /// The mounted POSIX namespace.
    pub dfs: Dfs,
    /// The DPU agent (control termination, DRAM pool, inline services).
    pub agent: DpuAgent,
    /// Tenant isolation manager on the client NIC.
    pub tenants: TenantManager,
    session: u64,
    clock: SimTime,
}

impl Ros2System {
    /// Builds and boots the full deployment.
    pub fn launch(config: Ros2Config) -> Result<Self, Ros2Error> {
        let client_spec = match config.placement {
            ClientPlacement::Host => NodeSpec {
                name: "host-client".into(),
                cpu: CpuComplement {
                    class: CoreClass::HostX86,
                    cores: 48,
                },
                nic: NicModel::connectx6(),
                port_rate: gbps(100),
                mem_budget: 64 << 30,
                dpu_tcp_rx: None,
            },
            ClientPlacement::Dpu => NodeSpec {
                name: "bluefield3".into(),
                cpu: CpuComplement {
                    class: CoreClass::DpuArm,
                    cores: 16,
                },
                nic: NicModel::connectx7(),
                port_rate: gbps(100),
                mem_budget: 30 << 30,
                dpu_tcp_rx: Some(DpuTcpRxModel::bluefield3()),
            },
        };
        let storage_spec = NodeSpec {
            name: "storage".into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: 64,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 64 << 30,
            dpu_tcp_rx: None,
        };
        let mut fabric = Fabric::new(
            config.transport,
            vec![client_spec, storage_spec],
            config.seed,
        );
        fabric.set_flow_hint(CLIENT_NODE, config.jobs);
        fabric.set_flow_hint(STORAGE_NODE, config.jobs);

        // The GPUDirect extension needs peermem on the client NIC (§3.5).
        if config.buffer_domain == MemoryDomain::GpuHbm {
            fabric.rdma_mut(CLIENT_NODE).enable_peermem();
            if config.transport != Transport::Rdma {
                return Err(Ros2Error::Config(
                    "GPUDirect placement requires the RDMA transport".into(),
                ));
            }
        }

        // Storage server: bdevs + engine + container.
        let bdevs = BdevLayer::new(NvmeArray::new(
            ros2_hw::NvmeModel::enterprise_1600(),
            config.ssds,
            config.data_mode,
        ));
        let mut engine = DaosEngine::new(
            "pool0",
            bdevs,
            2 << 30,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        engine
            .cont_create("posix")
            .map_err(|e| Ros2Error::Config(format!("{e:?}")))?;

        // DPU agent + tenant registration.
        let mut control = default_control(config.seed ^ 0xc71);
        let digest = Bytes::from(config.tenant.as_bytes().to_vec());
        control.add_tenant(config.tenant.clone(), digest.clone());
        let mut agent = DpuAgent::new(CLIENT_NODE, 30 << 30, control);
        agent.set_inline_service(config.inline_service);
        let mut tenants = TenantManager::new(CLIENT_NODE);
        tenants.register(
            &mut fabric,
            config.tenant.clone(),
            config.qos,
            SimDuration::from_secs(30),
        );

        // Control handshake: Hello -> PoolConnect -> ContOpen -> DfsMount.
        let mut clock = SimTime::ZERO;
        let hello = ControlRequest::Hello {
            tenant: config.tenant.clone(),
            auth: digest,
        };
        let (t, res) = agent.host_call(clock, None, hello, |_, _| ControlResponse::Ok);
        let (session, _) = res.map_err(Ros2Error::Control)?;
        clock = t;
        for req in [
            ControlRequest::PoolConnect {
                pool: "pool0".into(),
            },
            ControlRequest::ContOpen {
                container: "posix".into(),
            },
            ControlRequest::DfsMount,
        ] {
            let (t, res) = agent.host_call(clock, Some(session), req, |_, r| match r {
                ControlRequest::PoolConnect { .. } | ControlRequest::ContOpen { .. } => {
                    ControlResponse::Handle { handle: 1 }
                }
                _ => ControlResponse::Ok,
            });
            res.map_err(Ros2Error::Control)?;
            clock = t;
        }

        // Data plane: client connect (capability exchange happens inside —
        // the staging MRs registered here are what GetCapability conveys).
        let mut client = DaosClient::connect(
            &mut fabric,
            CLIENT_NODE,
            STORAGE_NODE,
            &config.tenant,
            "posix",
            config.jobs,
            config.buffer_len,
            match (config.placement, config.buffer_domain) {
                (_, MemoryDomain::GpuHbm) => MemoryDomain::GpuHbm,
                (ClientPlacement::Host, _) => MemoryDomain::HostDram,
                (ClientPlacement::Dpu, _) => MemoryDomain::DpuDram,
            },
            DaosCostModel::default_model(),
        )
        .map_err(|e| Ros2Error::Config(format!("{e:?}")))?;
        agent
            .reserve_dram(config.jobs as u64 * config.buffer_len)
            .map_err(|free| Ros2Error::Config(format!("DPU DRAM exhausted, {free} B free")))?;

        // Mount DFS.
        let (dfs, t) = {
            let mut s = DfsSession {
                fabric: &mut fabric,
                engine: &mut engine,
                client: &mut client,
            };
            Dfs::format(&mut s, clock, config.chunk_size)?
        };
        clock = t;

        Ok(Ros2System {
            config,
            fabric,
            engine,
            client,
            dfs,
            agent,
            tenants,
            session,
            clock,
        })
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The control-plane session token.
    pub fn session(&self) -> u64 {
        self.session
    }

    fn tick(&mut self, t: SimTime) {
        self.clock = self.clock.max(t);
    }

    /// Creates a directory at absolute `path` (parent must exist).
    pub fn mkdir(&mut self, path: &str) -> Result<Timed<DfsObj>, Ros2Error> {
        let now = self.clock;
        let (parent_path, name) = split_path(path)?;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            engine: &mut self.engine,
            client: &mut self.client,
        };
        let (parent, t1) = self.dfs.lookup(&mut s, now, parent_path)?;
        let (obj, t2) = self.dfs.mkdir(&mut s, t1, &parent, name, 0o755)?;
        drop(s);
        self.tick(t2);
        Ok(Timed {
            value: obj,
            latency: t2.saturating_since(now),
        })
    }

    /// Creates a regular file at absolute `path`.
    pub fn create(&mut self, path: &str) -> Result<Timed<DfsObj>, Ros2Error> {
        let now = self.clock;
        let (parent_path, name) = split_path(path)?;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            engine: &mut self.engine,
            client: &mut self.client,
        };
        let (parent, t1) = self.dfs.lookup(&mut s, now, parent_path)?;
        let (obj, t2) = self.dfs.create(&mut s, t1, &parent, name, 0o644)?;
        drop(s);
        self.tick(t2);
        Ok(Timed {
            value: obj,
            latency: t2.saturating_since(now),
        })
    }

    /// Opens an existing file or directory at absolute `path`.
    pub fn open(&mut self, path: &str) -> Result<Timed<DfsObj>, Ros2Error> {
        let now = self.clock;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            engine: &mut self.engine,
            client: &mut self.client,
        };
        let (obj, t) = self.dfs.lookup(&mut s, now, path)?;
        drop(s);
        self.tick(t);
        Ok(Timed {
            value: obj,
            latency: t.saturating_since(now),
        })
    }

    /// Writes `data` at `offset` in an open file, through the tenant's QoS
    /// admission and the DPU's inline service.
    pub fn write(
        &mut self,
        file: &mut DfsObj,
        offset: u64,
        data: Bytes,
    ) -> Result<Timed<()>, Ros2Error> {
        let now = self.clock;
        let bytes = data.len() as u64;
        let tenant = self.config.tenant.clone();
        let admitted = self
            .tenants
            .admit(now, &tenant, bytes)
            .ok_or_else(|| Ros2Error::Config(format!("unknown tenant {tenant}")))?;
        let start = admitted + self.agent.inline_cost(bytes);
        let job = (file.oid.lo % self.config.jobs as u64) as usize;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            engine: &mut self.engine,
            client: &mut self.client,
        };
        let t = self.dfs.write(&mut s, start, job, file, offset, data)?;
        drop(s);
        self.tick(t);
        Ok(Timed {
            value: (),
            latency: t.saturating_since(now),
        })
    }

    /// Reads `len` bytes at `offset` from an open file (QoS-admitted,
    /// decrypted inline when the crypto service is active).
    pub fn read(
        &mut self,
        file: &DfsObj,
        offset: u64,
        len: u64,
    ) -> Result<Timed<Bytes>, Ros2Error> {
        let now = self.clock;
        let tenant = self.config.tenant.clone();
        let admitted = self
            .tenants
            .admit(now, &tenant, len)
            .ok_or_else(|| Ros2Error::Config(format!("unknown tenant {tenant}")))?;
        let job = (file.oid.lo % self.config.jobs as u64) as usize;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            engine: &mut self.engine,
            client: &mut self.client,
        };
        let (data, t) = self.dfs.read(&mut s, admitted, job, file, offset, len)?;
        drop(s);
        let t = t + self.agent.inline_cost(data.len() as u64);
        self.tick(t);
        Ok(Timed {
            value: data,
            latency: t.saturating_since(now),
        })
    }

    /// Lists names in the directory at `path`.
    pub fn readdir(&mut self, path: &str) -> Result<Timed<Vec<String>>, Ros2Error> {
        let now = self.clock;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            engine: &mut self.engine,
            client: &mut self.client,
        };
        let (dir, t) = self.dfs.lookup(&mut s, now, path)?;
        let names = self.dfs.readdir(&mut s, t, &dir)?;
        drop(s);
        self.tick(t);
        Ok(Timed {
            value: names,
            latency: t.saturating_since(now),
        })
    }

    /// Stats the entry at absolute `path`.
    pub fn stat(&mut self, path: &str) -> Result<Timed<FileStat>, Ros2Error> {
        let now = self.clock;
        let (parent_path, name) = split_path(path)?;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            engine: &mut self.engine,
            client: &mut self.client,
        };
        let (parent, t1) = self.dfs.lookup(&mut s, now, parent_path)?;
        let (st, t2) = self.dfs.stat(&mut s, t1, &parent, name)?;
        drop(s);
        self.tick(t2);
        Ok(Timed {
            value: st,
            latency: t2.saturating_since(now),
        })
    }

    /// Removes the file or empty directory at absolute `path`.
    pub fn unlink(&mut self, path: &str) -> Result<Timed<()>, Ros2Error> {
        let now = self.clock;
        let (parent_path, name) = split_path(path)?;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            engine: &mut self.engine,
            client: &mut self.client,
        };
        let (parent, t1) = self.dfs.lookup(&mut s, now, parent_path)?;
        let t2 = self.dfs.unlink(&mut s, t1, &parent, name)?;
        drop(s);
        self.tick(t2);
        Ok(Timed {
            value: (),
            latency: t2.saturating_since(now),
        })
    }

    /// Aggregate data-plane (copy vs zero-copy, CRC scan vs combine)
    /// counters over the whole deployment: every NIC's registered memory,
    /// every VOS target's SCM pool, and every NVMe backing store.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        let mut total = self.fabric.data_plane_stats();
        total.merge(self.engine.data_plane_stats());
        total
    }

    /// Gathers activity counters from every layer.
    pub fn metrics(&self) -> SystemMetrics {
        SystemMetrics {
            client_ops: self.client.ops(),
            engine_rpcs: self.engine.rpcs(),
            dfs_ops: (self.dfs.meta_ops, self.dfs.data_ops),
            control_calls: self.agent.control_calls.get(),
            inline_bytes: self.agent.serviced_bytes.get(),
            violations: self.fabric.node(CLIENT_NODE).rdma.violations().total(),
        }
    }
}

/// Splits "/a/b/c" into ("/a/b", "c").
fn split_path(path: &str) -> Result<(&str, &str), Ros2Error> {
    let trimmed = path.trim_end_matches('/');
    let idx = trimmed
        .rfind('/')
        .ok_or_else(|| Ros2Error::Config(format!("bad path {path}")))?;
    let (dir, name) = trimmed.split_at(idx);
    Ok((if dir.is_empty() { "/" } else { dir }, &name[1..]))
}

/// A file-operation result with its virtual latency.
#[derive(Debug)]
pub struct Timed<T> {
    /// The operation result.
    pub value: T,
    /// Virtual latency of the operation.
    pub latency: SimDuration,
}

/// Summary of a deployment's activity.
#[derive(Clone, Debug)]
pub struct SystemMetrics {
    /// Data-plane operations issued by the client.
    pub client_ops: u64,
    /// RPCs processed by the engine.
    pub engine_rpcs: u64,
    /// DFS namespace / data operation counts.
    pub dfs_ops: (u64, u64),
    /// Control calls carried host↔DPU.
    pub control_calls: u64,
    /// Bytes passed through the inline service.
    pub inline_bytes: u64,
    /// Security violations observed at the client NIC.
    pub violations: u64,
}
