//! The assembled ROS2 system: testbed construction, control-plane
//! handshake, and a POSIX-flavoured file API over the offloaded data plane.
//!
//! [`Ros2System::launch`] builds the paper's architecture end to end:
//!
//! 1. the fabric (client host *or* BlueField-3 ↔ 100 Gbps switch ↔ storage
//!    server) on the selected transport;
//! 2. the unmodified DAOS engine on the storage server;
//! 3. the DPU agent with the tenant's PD, QoS and rkey-scope policy;
//! 4. the gRPC control handshake — Hello, PoolConnect, ContOpen, DfsMount,
//!    GetCapability — over the control channel (no payload bytes here);
//! 5. the DAOS client and DFS mount on the chosen placement.
//!
//! Every file operation advances the system's virtual clock and reports its
//! latency, so applications (the examples) can reason about delivered
//! performance without running the FIO harness.

use bytes::Bytes;
use ros2_ctl::{ControlError, ControlRequest, ControlResponse};
use ros2_daos::{
    AKey, BgService, ClientOp, ClientOpResult, DKey, DaosClient, DaosCostModel, DaosEngine,
    DaosError, EngineCluster, Epoch, MapSnapshot, ObjectClient, ObjectId, RebuildStats,
    RetryPolicy, RetryStats, ScrubOutcome, ScrubStats, ValueKind,
};
use ros2_dfs::{Dfs, DfsError, DfsObj, DfsSession, FileStat};
use ros2_dpu::{
    default_control, DpuAgent, DpuCacheStats, DpuClient, DpuStats, DpuTenantSpec, InlineService,
    QosLimits, TenantManager,
};
use ros2_fabric::Fabric;
use ros2_hw::{ClientPlacement, ClusterTopology, CoreClass, Transport};
use ros2_nvme::DataMode;
use ros2_sim::{ResourceStats, SimDuration, SimTime};
use ros2_verbs::{MemoryDomain, NodeId, PdId};

use crate::fault::{FaultPlan, ScheduledCorruption};

/// The deployment's scale-out shape: how many DAOS engines (one per
/// storage node behind the shared switch) and how many replicas each
/// object keeps. The default — one engine, RF 1 — is the paper's two-node
/// testbed and stays bit-identical to the pre-cluster assembly.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of DAOS engines (each a distinct fabric node).
    pub engines: usize,
    /// Replicas per object (1 ..= `ros2_daos::MAX_RF`).
    pub replication_factor: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            engines: 1,
            replication_factor: 1,
        }
    }
}

/// Deployment configuration (the knobs the paper sweeps, plus extensions).
#[derive(Clone, Debug)]
pub struct Ros2Config {
    /// Data-plane transport (§3.4).
    pub transport: Transport,
    /// Where the DAOS client runs.
    pub placement: ClientPlacement,
    /// Scale-out shape: engine count and replication factor.
    pub cluster: ClusterConfig,
    /// NVMe drives on each storage server (the paper uses 1 or 4).
    pub ssds: usize,
    /// Client jobs (connections/EQs).
    pub jobs: usize,
    /// DFS chunk size.
    pub chunk_size: u64,
    /// Device backing mode (Stored for correctness, Null for sweeps).
    pub data_mode: DataMode,
    /// Tenant identity.
    pub tenant: String,
    /// Inline service on the DPU byte path.
    pub inline_service: InlineService,
    /// Where client staging buffers live. `DpuDram` is the prototype
    /// (§3.2: "all payloads currently terminate in DPU DRAM");
    /// `GpuHbm` enables the §3.5 GPUDirect extension.
    pub buffer_domain: MemoryDomain,
    /// Per-job staging-buffer size.
    pub buffer_len: u64,
    /// Tenant QoS.
    pub qos: QosLimits,
    /// DPU read-cache carve in bytes (`None` = disabled, the default —
    /// every pinned baseline runs cache-off). Requires
    /// `ClientPlacement::Dpu`; the carve comes out of the agent's staging
    /// DRAM pool.
    pub dpu_cache: Option<u64>,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for Ros2Config {
    fn default() -> Self {
        Ros2Config {
            transport: Transport::Rdma,
            placement: ClientPlacement::Dpu,
            cluster: ClusterConfig::default(),
            ssds: 1,
            jobs: 4,
            chunk_size: 1 << 20,
            data_mode: DataMode::Stored,
            tenant: "default".into(),
            inline_service: InlineService::None,
            buffer_domain: MemoryDomain::DpuDram,
            buffer_len: 4 << 20,
            qos: QosLimits::unlimited(),
            dpu_cache: None,
            seed: 0x40552,
        }
    }
}

/// Launch/runtime failures.
#[derive(Debug)]
pub enum Ros2Error {
    /// Control-plane failure during handshake.
    Control(ControlError),
    /// Data-plane / storage failure.
    Dfs(DfsError),
    /// Configuration rejected (e.g. GPU buffers without peermem support).
    Config(String),
}

impl From<DfsError> for Ros2Error {
    fn from(e: DfsError) -> Self {
        Ros2Error::Dfs(e)
    }
}

/// The node ids used by every ROS2 deployment.
pub const CLIENT_NODE: NodeId = NodeId(0);
/// See [`CLIENT_NODE`].
pub const STORAGE_NODE: NodeId = NodeId(1);

/// The deployment's client stack — where `ClientPlacement` becomes a real
/// architectural fork, not a node-spec tweak.
// One stack per deployment — the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum ClientStack {
    /// Baseline: the DAOS client runs in-process on the host CPU. The
    /// SmartNIC is still the NIC — its agent terminates the management
    /// control channel and the tenant manager polices QoS at the NIC — but
    /// every data-plane phase executes on host cores.
    Host {
        /// The in-process client.
        client: DaosClient,
        /// The agent on the (pass-through) SmartNIC.
        agent: DpuAgent,
        /// Tenant QoS/PD policy at the NIC.
        tenants: TenantManager,
    },
    /// The ROS2 design: the whole client is offloaded to the BlueField-3;
    /// the host only rings doorbells. The agent and tenant manager live
    /// inside the offloaded client.
    Dpu(DpuClient),
}

impl ClientStack {
    /// The node the data-plane client runs on.
    pub fn node(&self) -> NodeId {
        match self {
            ClientStack::Host { client, .. } => client.node(),
            ClientStack::Dpu(c) => c.node(),
        }
    }

    /// The client's (first tenant's) protection domain.
    pub fn pd(&self) -> PdId {
        match self {
            ClientStack::Host { client, .. } => client.pd(),
            ClientStack::Dpu(c) => c.pd(),
        }
    }

    /// Data-plane operations issued.
    pub fn ops(&self) -> u64 {
        match self {
            ClientStack::Host { client, .. } => client.ops(),
            ClientStack::Dpu(c) => ObjectClient::ops(c),
        }
    }

    /// Aggregate booking counters over the client cores.
    pub fn resource_stats(&self) -> ResourceStats {
        match self {
            ClientStack::Host { client, .. } => client.resource_stats(),
            ClientStack::Dpu(c) => c.resource_stats(),
        }
    }

    /// Offload-path counters (zero under host placement).
    pub fn dpu_stats(&self) -> DpuStats {
        match self {
            ClientStack::Host { .. } => DpuStats::default(),
            ClientStack::Dpu(c) => c.dpu_stats(),
        }
    }

    /// DPU read-cache counters (all zeros under host placement or with
    /// the cache disabled).
    pub fn cache_stats(&self) -> DpuCacheStats {
        match self {
            ClientStack::Host { .. } => DpuCacheStats::default(),
            ClientStack::Dpu(c) => c.cache_stats(),
        }
    }

    /// Copy-discipline accounting for cache hits served out of DPU DRAM.
    pub fn cache_data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        match self {
            ClientStack::Host { .. } => ros2_buf::DataPlaneStats::default(),
            ClientStack::Dpu(c) => c.cache_data_plane_stats(),
        }
    }

    /// Delivers a RAS map snapshot to the stack's cached map(s) at `at` —
    /// under DPU placement the offloaded lanes all hear the delivery.
    pub fn deliver_map(&mut self, at: SimTime, snap: MapSnapshot) {
        match self {
            ClientStack::Host { client, .. } => client.deliver_map(at, snap),
            ClientStack::Dpu(c) => c.deliver_map(at, snap),
        }
    }

    /// Installs `snap` immediately (the authoritative `MapQuery` reply).
    pub fn sync_map(&mut self, snap: MapSnapshot) {
        match self {
            ClientStack::Host { client, .. } => client.sync_map(snap),
            ClientStack::Dpu(c) => c.sync_map(snap),
        }
    }

    /// Recovery-ladder counters across the stack (all DPU lanes merged).
    pub fn retry_stats(&self) -> RetryStats {
        match self {
            ClientStack::Host { client, .. } => client.retry_stats(),
            ClientStack::Dpu(c) => c.retry_stats(),
        }
    }

    /// Sets the recovery-ladder policy on every client in the stack.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        match self {
            ClientStack::Host { client, .. } => client.set_retry_policy(policy),
            ClientStack::Dpu(c) => c.set_retry_policy(policy),
        }
    }

    /// Earliest instant an op completed on a retry attempt.
    pub fn first_successful_retry(&self) -> Option<SimTime> {
        match self {
            ClientStack::Host { client, .. } => client.first_successful_retry(),
            ClientStack::Dpu(c) => c.first_successful_retry(),
        }
    }

    /// The DPU agent (control termination, DRAM pool, inline services).
    pub fn agent(&self) -> &DpuAgent {
        match self {
            ClientStack::Host { agent, .. } => agent,
            ClientStack::Dpu(c) => c.agent(),
        }
    }

    /// Mutable agent access.
    pub fn agent_mut(&mut self) -> &mut DpuAgent {
        match self {
            ClientStack::Host { agent, .. } => agent,
            ClientStack::Dpu(c) => c.agent_mut(),
        }
    }

    /// The tenant manager.
    pub fn tenants(&self) -> &TenantManager {
        match self {
            ClientStack::Host { tenants, .. } => tenants,
            ClientStack::Dpu(c) => c.tenants(),
        }
    }

    /// Mutable tenant-manager access.
    pub fn tenants_mut(&mut self) -> &mut TenantManager {
        match self {
            ClientStack::Host { tenants, .. } => tenants,
            ClientStack::Dpu(c) => c.tenants_mut(),
        }
    }
}

impl ObjectClient for ClientStack {
    fn update(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        match self {
            ClientStack::Host { client, .. } => {
                client.update(fabric, cluster, now, job, oid, dkey, akey, kind, data)
            }
            ClientStack::Dpu(c) => {
                ObjectClient::update(c, fabric, cluster, now, job, oid, dkey, akey, kind, data)
            }
        }
    }

    fn fetch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        match self {
            ClientStack::Host { client, .. } => {
                client.fetch(fabric, cluster, now, job, oid, dkey, akey, kind, epoch, len)
            }
            ClientStack::Dpu(c) => ObjectClient::fetch(
                c, fabric, cluster, now, job, oid, dkey, akey, kind, epoch, len,
            ),
        }
    }

    fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        match self {
            ClientStack::Host { client, .. } => {
                client.execute_batch(fabric, cluster, now, job, ops)
            }
            ClientStack::Dpu(c) => ObjectClient::execute_batch(c, fabric, cluster, now, job, ops),
        }
    }

    fn execute_pipelined(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        match self {
            ClientStack::Host { client, .. } => {
                client.execute_pipelined(fabric, cluster, now, job, ops)
            }
            ClientStack::Dpu(c) => {
                ObjectClient::execute_pipelined(c, fabric, cluster, now, job, ops)
            }
        }
    }

    fn ops(&self) -> u64 {
        ClientStack::ops(self)
    }
}

/// A running ROS2 deployment.
pub struct Ros2System {
    /// The configuration it was launched with.
    pub config: Ros2Config,
    /// The data-plane fabric.
    pub fabric: Fabric,
    /// The storage cluster: N unmodified engines behind the versioned pool
    /// map (a single engine in the default config).
    pub cluster: EngineCluster,
    /// The client stack (host in-process or DPU-offloaded, per
    /// `config.placement`).
    pub client: ClientStack,
    /// The mounted POSIX namespace.
    pub dfs: Dfs,
    session: u64,
    clock: SimTime,
    faults: FaultPlan,
    /// Index of the next unfired entry in `faults.kills`.
    next_kill: usize,
    /// Index of the next unfired entry in `faults.bitrot`.
    next_bitrot: usize,
}

impl Ros2System {
    /// Builds and boots the full deployment.
    pub fn launch(config: Ros2Config) -> Result<Self, Ros2Error> {
        let n_engines = config.cluster.engines;
        if n_engines == 0 {
            return Err(Ros2Error::Config("at least one engine".into()));
        }
        if !(1..=ros2_daos::MAX_RF.min(n_engines)).contains(&config.cluster.replication_factor) {
            return Err(Ros2Error::Config(format!(
                "replication factor must be in 1..={} and <= engine count",
                ros2_daos::MAX_RF
            )));
        }
        let topology = ClusterTopology::one_client(config.placement, n_engines);
        let mut fabric = Fabric::for_topology(config.transport, &topology, config.seed);
        for node in 0..topology.node_count() {
            fabric.set_flow_hint(NodeId(node as u32), config.jobs);
        }

        // The GPUDirect extension needs peermem on the client NIC (§3.5).
        if config.buffer_domain == MemoryDomain::GpuHbm {
            fabric.rdma_mut(CLIENT_NODE).enable_peermem();
            if config.transport != Transport::Rdma {
                return Err(Ros2Error::Config(
                    "GPUDirect placement requires the RDMA transport".into(),
                ));
            }
        }

        // Storage servers: bdevs + engine per node, behind the pool map
        // (the canonical assembly shared with the cluster FIO world).
        let storage_nodes: Vec<NodeId> = (0..n_engines)
            .map(|i| NodeId(topology.storage_node(i) as u32))
            .collect();
        let mut cluster = EngineCluster::assemble(
            storage_nodes.clone(),
            config.cluster.replication_factor,
            config.ssds,
            config.data_mode,
            2 << 30,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        cluster
            .cont_create("posix")
            .map_err(|e| Ros2Error::Config(format!("{e:?}")))?;

        // DPU agent: management control-channel termination.
        let mut control = default_control(config.seed ^ 0xc71);
        let digest = Bytes::from(config.tenant.as_bytes().to_vec());
        control.add_tenant(config.tenant.clone(), digest.clone());
        let mut agent = DpuAgent::new(CLIENT_NODE, 30 << 30, control);
        agent.set_inline_service(config.inline_service);

        // Control handshake: Hello -> PoolConnect -> ContOpen -> DfsMount.
        let mut clock = SimTime::ZERO;
        let hello = ControlRequest::Hello {
            tenant: config.tenant.clone(),
            auth: digest,
        };
        let (t, res) = agent.host_call(clock, None, hello, |_, _| ControlResponse::Ok);
        let (session, _) = res.map_err(Ros2Error::Control)?;
        clock = t;
        for req in [
            ControlRequest::PoolConnect {
                pool: "pool0".into(),
            },
            ControlRequest::ContOpen {
                container: "posix".into(),
            },
            ControlRequest::DfsMount,
        ] {
            let (t, res) = agent.host_call(clock, Some(session), req, |_, r| match r {
                ControlRequest::PoolConnect { .. } | ControlRequest::ContOpen { .. } => {
                    ControlResponse::Handle { handle: 1 }
                }
                _ => ControlResponse::Ok,
            });
            res.map_err(Ros2Error::Control)?;
            clock = t;
        }

        let buffer_domain = match (config.placement, config.buffer_domain) {
            (_, MemoryDomain::GpuHbm) => MemoryDomain::GpuHbm,
            (ClientPlacement::Host, _) => MemoryDomain::HostDram,
            (ClientPlacement::Dpu, _) => MemoryDomain::DpuDram,
        };

        // Data plane: the placement fork. Host keeps the in-process client
        // (capability exchange happens inside — the staging MRs registered
        // here are what GetCapability conveys); Dpu builds the offloaded
        // client around the agent, with QoS admission and scoped rkeys
        // enforced on every byte.
        let mut client = match config.placement {
            ClientPlacement::Host => {
                if config.dpu_cache.is_some() {
                    return Err(Ros2Error::Config(
                        "dpu_cache requires ClientPlacement::Dpu".into(),
                    ));
                }
                let mut tenants = TenantManager::new(CLIENT_NODE);
                tenants.register(
                    &mut fabric,
                    config.tenant.clone(),
                    config.qos,
                    SimDuration::from_secs(30),
                );
                let client = DaosClient::connect_multi(
                    &mut fabric,
                    CLIENT_NODE,
                    &storage_nodes,
                    &config.tenant,
                    "posix",
                    config.jobs,
                    config.buffer_len,
                    buffer_domain,
                    DaosCostModel::default_model(),
                )
                .map_err(|e| Ros2Error::Config(format!("{e:?}")))?;
                agent
                    .reserve_dram(config.jobs as u64 * config.buffer_len)
                    .map_err(|e| Ros2Error::Config(e.to_string()))?;
                ClientStack::Host {
                    client,
                    agent,
                    tenants,
                }
            }
            ClientPlacement::Dpu => {
                let mut dpu = DpuClient::connect_cluster(
                    &mut fabric,
                    CLIENT_NODE,
                    &storage_nodes,
                    "posix",
                    config.jobs,
                    config.buffer_len,
                    buffer_domain,
                    DaosCostModel::default_model(),
                    agent,
                    vec![DpuTenantSpec {
                        name: config.tenant.clone(),
                        qos: config.qos,
                        rkey_scope: SimDuration::from_secs(30),
                    }],
                    config.seed,
                )
                .map_err(|e| Ros2Error::Config(e.to_string()))?;
                if let Some(bytes) = config.dpu_cache {
                    dpu.enable_read_cache(bytes)
                        .map_err(|e| Ros2Error::Config(e.to_string()))?;
                }
                ClientStack::Dpu(dpu)
            }
        };

        // Mount DFS.
        let (dfs, t) = {
            let mut s = DfsSession {
                fabric: &mut fabric,
                cluster: &mut cluster,
                client: &mut client,
            };
            Dfs::format(&mut s, clock, config.chunk_size)?
        };
        clock = t;

        Ok(Ros2System {
            config,
            fabric,
            cluster,
            client,
            dfs,
            session,
            clock,
            faults: FaultPlan::none(),
            next_kill: 0,
            next_bitrot: 0,
        })
    }

    /// The first engine — the whole pool in the default single-engine
    /// config (tests and reports).
    pub fn engine(&self) -> &DaosEngine {
        self.cluster.engine(0)
    }

    /// Mutable access to the first engine (tests, fault injection).
    pub fn engine_mut(&mut self) -> &mut DaosEngine {
        self.cluster.engine_mut(0)
    }

    /// Marks engine `slot` dead: the pool map bumps its revision, a
    /// RAS-style event is raised on the control plane (the agent terminates
    /// it, exactly like the management calls), and every subsequent op
    /// routes around the dead engine — fetches of affected objects are
    /// served degraded from surviving replicas. Redundancy is restored by
    /// [`Self::rebuild`]. Returns the new map revision.
    ///
    /// The kill is committed *before* the event is delivered, and stays
    /// committed even if the control call errors — the engine is dead
    /// whether or not anyone was notified, exactly like a real RAS event.
    /// On `Err` the map is already at the new revision with a rebuild
    /// pending.
    pub fn kill_engine(&mut self, slot: usize) -> Result<u64, Ros2Error> {
        let version = self
            .cluster
            .kill_engine(slot)
            .map_err(|e| Ros2Error::Config(format!("{e:?}")))?;
        let now = self.clock;
        let session = self.session;
        let (t, res) = self.client.agent_mut().host_call(
            now,
            Some(session),
            ControlRequest::RasEvent {
                engine: slot as u32,
                map_version: version,
            },
            |_, _| ControlResponse::Ok,
        );
        // The new map is *delivered* to the client stack's cache after the
        // plan's RAS delay — until the delivery lands (and is polled), the
        // pipelined client keeps routing by the stale revision and relies
        // on engine fencing plus the retry ladder to recover.
        let snap = self.cluster.snapshot_map();
        self.client.deliver_map(t + self.faults.ras_delay, snap);
        res.map_err(Ros2Error::Control)?;
        self.tick(t);
        Ok(version)
    }

    /// Installs a fault plan: black holes and stalls apply immediately;
    /// kills arm against the client-op counter and fire from inside
    /// [`Self::write`]/[`Self::read`] once the threshold is crossed, so a
    /// scheduled kill lands mid-workload without the caller orchestrating
    /// it. RAS deliveries triggered by those kills (and by explicit
    /// [`Self::kill_engine`] calls) reach the client stack `ras_delay`
    /// late.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for &slot in &plan.blackholes {
            self.cluster.set_blackhole(slot, true);
        }
        for stall in &plan.stalls {
            self.cluster.set_stall(stall.slot, stall.extra);
        }
        self.faults = plan;
        self.next_kill = 0;
        self.next_bitrot = 0;
    }

    /// The installed fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Fires any armed kills and bit-rot injections whose client-op
    /// threshold has been crossed.
    fn fire_due_kills(&mut self) -> Result<(), Ros2Error> {
        while self.next_kill < self.faults.kills.len() {
            let kill = self.faults.kills[self.next_kill];
            if self.client.ops() < kill.after_client_ops {
                break;
            }
            self.next_kill += 1;
            self.kill_engine(kill.slot)?;
        }
        while self.next_bitrot < self.faults.bitrot.len() {
            let rot = self.faults.bitrot[self.next_bitrot];
            if self.client.ops() < rot.after_client_ops {
                break;
            }
            self.next_bitrot += 1;
            self.fire_bitrot(rot);
        }
        Ok(())
    }

    /// Silently corrupts one stored extent on the scheduled slot: the
    /// victim object is picked deterministically from the engine's sorted
    /// object list. No event is raised and no client ever fails — only
    /// the scrub service can see it.
    fn fire_bitrot(&mut self, rot: ScheduledCorruption) {
        let engine = self.cluster.engine_mut(rot.slot);
        let oids = engine.list_objects();
        // Walk forward from the drawn index to the next object with
        // array payload — metadata objects have nothing to rot.
        for k in 0..oids.len() {
            let oid = oids[(rot.object_index + k) % oids.len()];
            if engine.corrupt_object(oid) {
                return;
            }
        }
    }

    /// An explicit `MapQuery` control round-trip: the client stack asks
    /// the control plane for the current pool map and installs the reply
    /// authoritatively (no delivery delay — the caller is blocked on the
    /// answer). Returns the fetched revision.
    pub fn map_query(&mut self) -> Result<u64, Ros2Error> {
        let snap = self.cluster.snapshot_map();
        let version = snap.version();
        let healths: Vec<u8> = snap
            .map()
            .members()
            .iter()
            .map(|m| u8::from(m.health == ros2_daos::EngineHealth::Up))
            .collect();
        let pending = snap.pending_dead().map(|s| s as u32).unwrap_or(u32::MAX);
        let now = self.clock;
        let session = self.session;
        let (t, res) = self.client.agent_mut().host_call(
            now,
            Some(session),
            ControlRequest::MapQuery,
            move |_, _| ControlResponse::MapUpdate {
                version,
                healths: Bytes::from(healths.clone()),
                pending_dead: pending,
            },
        );
        res.map_err(Ros2Error::Control)?;
        self.client.sync_map(snap);
        self.tick(t);
        Ok(version)
    }

    /// Recovery-ladder counters across the whole client stack.
    pub fn retry_stats(&self) -> RetryStats {
        self.client.retry_stats()
    }

    /// Total stale-map fences observed across the cluster's engines.
    pub fn fences(&self) -> u64 {
        self.cluster.fences()
    }

    /// Online rebuild of the pending engine failure: surviving replicas
    /// stream the dead engine's records to the deterministic backfill
    /// members at data-plane rates (fabric-booked), restoring the
    /// replication factor. Returns the virtual duration of the rebuild.
    pub fn rebuild(&mut self) -> Result<Timed<RebuildStats>, Ros2Error> {
        let now = self.clock;
        let t = self
            .cluster
            .rebuild(&mut self.fabric, now)
            .map_err(|e| Ros2Error::Config(format!("{e:?}")))?;
        self.tick(t);
        Ok(Timed {
            value: self.cluster.rebuild_stats(),
            latency: t.saturating_since(now),
        })
    }

    /// Redundancy counters: degraded reads served, rebuild movement.
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.cluster.rebuild_stats()
    }

    /// Sets a background service's pacing budget (rebuild, aggregation,
    /// or scrub). Unlimited by default — bit-identical to unpaced.
    pub fn set_service_budget(&mut self, service: BgService, limits: QosLimits) {
        self.cluster.set_service_budget(service, limits);
    }

    /// Scrub/aggregation counters, throttle waits included.
    pub fn scrub_stats(&self) -> ScrubStats {
        self.cluster.scrub_stats()
    }

    /// Coordinated epoch aggregation of the mounted container: every up
    /// replica aggregates at the same cluster-safe boundary (see
    /// `EngineCluster::aggregate_cluster`), then the boundary is reported
    /// on the control plane. Call with the pipeline drained — the serial
    /// file API never leaves epochs in flight. Returns the boundary used.
    pub fn aggregate(&mut self) -> Result<Timed<Epoch>, Ros2Error> {
        let now = self.clock;
        let (boundary, t) = self
            .cluster
            .aggregate_cluster(now, "posix", None)
            .map_err(|e| Ros2Error::Config(format!("{e:?}")))?;
        let session = self.session;
        let (t2, res) = self.client.agent_mut().host_call(
            t,
            Some(session),
            ControlRequest::AggregationReport {
                container: "posix".into(),
                boundary: boundary.0,
            },
            |_, _| ControlResponse::Ok,
        );
        res.map_err(Ros2Error::Control)?;
        self.tick(t2);
        Ok(Timed {
            value: boundary,
            latency: t2.saturating_since(now),
        })
    }

    /// One replica-scrub pass: cross-checks every object's replicas
    /// against their recorded checksums (combine-only when clean),
    /// repairs rotten replicas from a healthy copy over the rebuild
    /// fabric path, and raises a RAS-style `ScrubReport` control event
    /// with the pass's findings.
    pub fn scrub(&mut self) -> Result<Timed<ScrubOutcome>, Ros2Error> {
        let now = self.clock;
        let (outcome, t) = self
            .cluster
            .scrub(&mut self.fabric, now)
            .map_err(|e| Ros2Error::Config(format!("{e:?}")))?;
        let session = self.session;
        let (t2, res) = self.client.agent_mut().host_call(
            t,
            Some(session),
            ControlRequest::ScrubReport {
                found: outcome.mismatches_found,
                repaired: outcome.mismatches_repaired,
            },
            |_, _| ControlResponse::Ok,
        );
        res.map_err(Ros2Error::Control)?;
        self.tick(t2);
        Ok(Timed {
            value: outcome,
            latency: t2.saturating_since(now),
        })
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The control-plane session token.
    pub fn session(&self) -> u64 {
        self.session
    }

    fn tick(&mut self, t: SimTime) {
        self.clock = self.clock.max(t);
    }

    /// Creates a directory at absolute `path` (parent must exist).
    pub fn mkdir(&mut self, path: &str) -> Result<Timed<DfsObj>, Ros2Error> {
        let now = self.clock;
        let (parent_path, name) = split_path(path)?;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: &mut self.client,
        };
        let (parent, t1) = self.dfs.lookup(&mut s, now, parent_path)?;
        let (obj, t2) = self.dfs.mkdir(&mut s, t1, &parent, name, 0o755)?;
        self.tick(t2);
        Ok(Timed {
            value: obj,
            latency: t2.saturating_since(now),
        })
    }

    /// Creates a regular file at absolute `path`.
    pub fn create(&mut self, path: &str) -> Result<Timed<DfsObj>, Ros2Error> {
        let now = self.clock;
        let (parent_path, name) = split_path(path)?;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: &mut self.client,
        };
        let (parent, t1) = self.dfs.lookup(&mut s, now, parent_path)?;
        let (obj, t2) = self.dfs.create(&mut s, t1, &parent, name, 0o644)?;
        self.tick(t2);
        Ok(Timed {
            value: obj,
            latency: t2.saturating_since(now),
        })
    }

    /// Opens an existing file or directory at absolute `path`.
    pub fn open(&mut self, path: &str) -> Result<Timed<DfsObj>, Ros2Error> {
        let now = self.clock;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: &mut self.client,
        };
        let (obj, t) = self.dfs.lookup(&mut s, now, path)?;
        self.tick(t);
        Ok(Timed {
            value: obj,
            latency: t.saturating_since(now),
        })
    }

    /// Writes `data` at `offset` in an open file, through the tenant's QoS
    /// admission and the DPU's inline service.
    ///
    /// Under host placement admission and the inline service apply once at
    /// the NIC, here; under DPU placement the offloaded client admits and
    /// services every constituent object op itself.
    pub fn write(
        &mut self,
        file: &mut DfsObj,
        offset: u64,
        data: Bytes,
    ) -> Result<Timed<()>, Ros2Error> {
        let now = self.clock;
        let bytes = data.len() as u64;
        let start = match &mut self.client {
            ClientStack::Host { agent, tenants, .. } => {
                let tenant = &self.config.tenant;
                let admitted = tenants
                    .admit(now, tenant, bytes)
                    .ok_or_else(|| Ros2Error::Config(format!("unknown tenant {tenant}")))?;
                admitted + agent.inline_cost(bytes)
            }
            ClientStack::Dpu(_) => now,
        };
        let job = (file.oid.lo % self.config.jobs as u64) as usize;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: &mut self.client,
        };
        let t = self.dfs.write(&mut s, start, job, file, offset, data)?;
        self.tick(t);
        self.fire_due_kills()?;
        Ok(Timed {
            value: (),
            latency: t.saturating_since(now),
        })
    }

    /// Reads `len` bytes at `offset` from an open file (QoS-admitted,
    /// decrypted inline when the crypto service is active). See
    /// [`Self::write`] for where admission applies per placement.
    pub fn read(
        &mut self,
        file: &DfsObj,
        offset: u64,
        len: u64,
    ) -> Result<Timed<Bytes>, Ros2Error> {
        let now = self.clock;
        let start = match &mut self.client {
            ClientStack::Host { tenants, .. } => {
                let tenant = &self.config.tenant;
                tenants
                    .admit(now, tenant, len)
                    .ok_or_else(|| Ros2Error::Config(format!("unknown tenant {tenant}")))?
            }
            ClientStack::Dpu(_) => now,
        };
        let job = (file.oid.lo % self.config.jobs as u64) as usize;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: &mut self.client,
        };
        let (data, t) = self.dfs.read(&mut s, start, job, file, offset, len)?;
        let t = match &mut self.client {
            ClientStack::Host { agent, .. } => t + agent.inline_cost(data.len() as u64),
            ClientStack::Dpu(_) => t,
        };
        self.tick(t);
        self.fire_due_kills()?;
        Ok(Timed {
            value: data,
            latency: t.saturating_since(now),
        })
    }

    /// Lists names in the directory at `path`.
    pub fn readdir(&mut self, path: &str) -> Result<Timed<Vec<String>>, Ros2Error> {
        let now = self.clock;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: &mut self.client,
        };
        let (dir, t) = self.dfs.lookup(&mut s, now, path)?;
        let names = self.dfs.readdir(&mut s, t, &dir)?;
        self.tick(t);
        Ok(Timed {
            value: names,
            latency: t.saturating_since(now),
        })
    }

    /// Stats the entry at absolute `path`.
    pub fn stat(&mut self, path: &str) -> Result<Timed<FileStat>, Ros2Error> {
        let now = self.clock;
        let (parent_path, name) = split_path(path)?;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: &mut self.client,
        };
        let (parent, t1) = self.dfs.lookup(&mut s, now, parent_path)?;
        let (st, t2) = self.dfs.stat(&mut s, t1, &parent, name)?;
        self.tick(t2);
        Ok(Timed {
            value: st,
            latency: t2.saturating_since(now),
        })
    }

    /// Removes the file or empty directory at absolute `path`.
    pub fn unlink(&mut self, path: &str) -> Result<Timed<()>, Ros2Error> {
        let now = self.clock;
        let (parent_path, name) = split_path(path)?;
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: &mut self.client,
        };
        let (parent, t1) = self.dfs.lookup(&mut s, now, parent_path)?;
        let t2 = self.dfs.unlink(&mut s, t1, &parent, name)?;
        self.tick(t2);
        Ok(Timed {
            value: (),
            latency: t2.saturating_since(now),
        })
    }

    /// Aggregate data-plane (copy vs zero-copy, CRC scan vs combine)
    /// counters over the whole deployment: every NIC's registered memory,
    /// every VOS target's SCM pool, and every NVMe backing store.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        let mut total = self.fabric.data_plane_stats();
        total.merge(self.cluster.data_plane_stats());
        total.merge(self.client.cache_data_plane_stats());
        total
    }

    /// Registers a further tenant's *NIC policy* — protection domain, QoS
    /// buckets, rkey scope — on whichever side owns the tenant manager.
    ///
    /// This provisions isolation state only. Data-plane lanes are fixed at
    /// launch: under DPU placement a tenant registered here cannot carry
    /// offloaded I/O (that requires a `DpuTenantSpec` at launch), which is
    /// exactly what the isolation tests need — a PD to probe against — and
    /// nothing more.
    pub fn register_tenant(
        &mut self,
        tenant: impl Into<String>,
        qos: QosLimits,
        rkey_scope: SimDuration,
    ) -> PdId {
        let tenants = match &mut self.client {
            ClientStack::Host { tenants, .. } => tenants,
            ClientStack::Dpu(c) => c.tenants_mut(),
        };
        tenants.register(&mut self.fabric, tenant, qos, rkey_scope)
    }

    /// The tenant manager (QoS/PD state and admission counters).
    pub fn tenants(&self) -> &TenantManager {
        self.client.tenants()
    }

    /// The DPU agent.
    pub fn agent(&self) -> &DpuAgent {
        self.client.agent()
    }

    /// Mutable agent access (management control calls).
    pub fn agent_mut(&mut self) -> &mut DpuAgent {
        self.client.agent_mut()
    }

    /// Offload-path counters (zero under host placement).
    pub fn dpu_stats(&self) -> DpuStats {
        self.client.dpu_stats()
    }

    /// DPU read-cache counters (zero while the cache is disabled).
    pub fn cache_stats(&self) -> DpuCacheStats {
        self.client.cache_stats()
    }

    /// Gathers activity counters from every layer.
    pub fn metrics(&self) -> SystemMetrics {
        SystemMetrics {
            client_ops: self.client.ops(),
            engine_rpcs: self.cluster.rpcs(),
            dfs_ops: (self.dfs.meta_ops, self.dfs.data_ops),
            control_calls: self.client.agent().control_calls.get(),
            inline_bytes: self.client.agent().serviced_bytes.get(),
            violations: self.fabric.node(CLIENT_NODE).rdma.violations().total(),
            retry: self.client.retry_stats(),
            scrub: self.cluster.scrub_stats(),
            cache: self.client.cache_stats(),
        }
    }
}

/// Splits "/a/b/c" into ("/a/b", "c").
fn split_path(path: &str) -> Result<(&str, &str), Ros2Error> {
    let trimmed = path.trim_end_matches('/');
    let idx = trimmed
        .rfind('/')
        .ok_or_else(|| Ros2Error::Config(format!("bad path {path}")))?;
    let (dir, name) = trimmed.split_at(idx);
    Ok((if dir.is_empty() { "/" } else { dir }, &name[1..]))
}

/// A file-operation result with its virtual latency.
#[derive(Debug)]
pub struct Timed<T> {
    /// The operation result.
    pub value: T,
    /// Virtual latency of the operation.
    pub latency: SimDuration,
}

/// Summary of a deployment's activity.
#[derive(Clone, Debug)]
pub struct SystemMetrics {
    /// Data-plane operations issued by the client.
    pub client_ops: u64,
    /// RPCs processed by the engine.
    pub engine_rpcs: u64,
    /// DFS namespace / data operation counts.
    pub dfs_ops: (u64, u64),
    /// Control calls carried host↔DPU.
    pub control_calls: u64,
    /// Bytes passed through the inline service.
    pub inline_bytes: u64,
    /// Security violations observed at the client NIC.
    pub violations: u64,
    /// Recovery-ladder counters across the client stack.
    pub retry: RetryStats,
    /// Background-service counters (scrub passes, repair volume,
    /// per-service throttle waits).
    pub scrub: ScrubStats,
    /// DPU read-cache counters (all zeros unless the cache is enabled
    /// under DPU placement).
    pub cache: DpuCacheStats,
}
