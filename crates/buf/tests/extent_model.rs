//! Model check: the zero-copy extent store against a flat `Vec<u8>`
//! reference under random overlapping writes, slice writes, discards,
//! reads and CRC range queries.

use bytes::Bytes;
use proptest::prelude::*;
use ros2_buf::{crc32c, ExtentStore};

/// Address space of the model (covers several CRC chunks).
const SPACE: u64 = 20_000;

#[derive(Clone, Debug)]
enum Op {
    /// Zero-copy write of `len` bytes of `fill`-derived data at `at`.
    Write { at: u64, len: u64, fill: u8 },
    /// Borrowed-slice write.
    WriteSlice { at: u64, len: u64, fill: u8 },
    /// Discard (TRIM).
    Discard { at: u64, len: u64 },
    /// Read and compare against the model.
    Read { at: u64, len: u64 },
    /// CRC of a range, compared against crc32c of the model slice.
    Crc { at: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let addr = 0u64..(SPACE - 1);
    let len = 1u64..6000;
    let kind = 0u32..5;
    (kind, addr, len, any::<u8>()).prop_map(|(kind, at, len, fill)| {
        let len = len.min(SPACE - at);
        match kind {
            0 => Op::Write { at, len, fill },
            1 => Op::WriteSlice { at, len, fill },
            2 => Op::Discard { at, len },
            3 => Op::Read { at, len },
            _ => Op::Crc { at, len },
        }
    })
}

fn payload(len: u64, fill: u8) -> Vec<u8> {
    (0..len).map(|i| fill.wrapping_add(i as u8)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn store_matches_flat_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut store = ExtentStore::new();
        let mut model = vec![0u8; SPACE as usize];
        for op in &ops {
            match *op {
                Op::Write { at, len, fill } => {
                    let data = payload(len, fill);
                    model[at as usize..(at + len) as usize].copy_from_slice(&data);
                    store.write(at, Bytes::from(data));
                }
                Op::WriteSlice { at, len, fill } => {
                    let data = payload(len, fill);
                    model[at as usize..(at + len) as usize].copy_from_slice(&data);
                    store.write_slice(at, &data);
                }
                Op::Discard { at, len } => {
                    model[at as usize..(at + len) as usize].fill(0);
                    store.discard(at, len);
                }
                Op::Read { at, len } => {
                    let got = store.read(at, len as usize);
                    prop_assert_eq!(
                        &got[..],
                        &model[at as usize..(at + len) as usize],
                        "read({}, {})", at, len
                    );
                }
                Op::Crc { at, len } => {
                    let want = crc32c(&model[at as usize..(at + len) as usize]);
                    prop_assert_eq!(store.crc_of_range(at, len), want, "crc({}, {})", at, len);
                }
            }
        }
        // Full-space sweep: contents and CRC agree after the whole history,
        // and the caches cannot have gone stale.
        let got = store.read(0, SPACE as usize);
        prop_assert_eq!(&got[..], &model[..]);
        prop_assert_eq!(store.crc_of_range(0, SPACE), crc32c(&model));
        prop_assert_eq!(store.crc_of_range(0, SPACE), crc32c(&model)); // cached pass
    }
}
