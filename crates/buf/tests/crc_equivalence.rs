//! Equivalence proof for the CRC32C paths: the hardware (SSE4.2) path, the
//! slicing-by-16 software path, and combine-of-chunk-CRCs must all match
//! the seed's table-driven slicing-by-8 implementation — kept verbatim
//! below as the oracle — on random data and random chunkings.

use proptest::prelude::*;
use ros2_buf::{crc32c, crc32c_append, crc32c_append_sw, crc32c_combine, crc32c_zeros};

/// The seed's slicing-by-8 implementation (`crates/daos/src/checksum.rs`
/// before this PR), verbatim, as the independent oracle.
mod seed_reference {
    const POLY: u32 = 0x82F6_3B78;

    fn table() -> &'static [[u32; 256]; 8] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<Box<[[u32; 256]; 8]>> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = Box::new([[0u32; 256]; 8]);
            for i in 0..256u32 {
                let mut crc = i;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ POLY
                    } else {
                        crc >> 1
                    };
                }
                t[0][i as usize] = crc;
            }
            for i in 0..256 {
                for slice in 1..8 {
                    let prev = t[slice - 1][i];
                    t[slice][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
                }
            }
            t
        })
    }

    pub fn crc32c_append(state: u32, data: &[u8]) -> u32 {
        let t = table();
        let mut crc = !state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
            let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    pub fn crc32c(data: &[u8]) -> u32 {
        crc32c_append(0, data)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One-shot: hw/auto path and slicing-by-16 both equal the oracle.
    #[test]
    fn one_shot_matches_oracle(data in prop::collection::vec(any::<u8>(), 0..5000)) {
        let want = seed_reference::crc32c(&data);
        prop_assert_eq!(crc32c(&data), want);
        prop_assert_eq!(crc32c_append_sw(0, &data), want);
    }

    /// Chunked continuation through both paths equals the oracle, at every
    /// random chunk size.
    #[test]
    fn chunked_matches_oracle(
        data in prop::collection::vec(any::<u8>(), 1..5000),
        step in 1usize..257,
    ) {
        let want = seed_reference::crc32c(&data);
        let mut auto = 0u32;
        let mut sw = 0u32;
        let mut oracle = 0u32;
        for chunk in data.chunks(step) {
            auto = crc32c_append(auto, chunk);
            sw = crc32c_append_sw(sw, chunk);
            oracle = seed_reference::crc32c_append(oracle, chunk);
        }
        prop_assert_eq!(auto, want);
        prop_assert_eq!(sw, want);
        prop_assert_eq!(oracle, want);
    }

    /// Combine of independently computed chunk CRCs equals the oracle over
    /// the concatenation, for random chunkings — the property the store's
    /// fetch-verify path rests on.
    #[test]
    fn combine_matches_oracle(
        data in prop::collection::vec(any::<u8>(), 1..5000),
        step in 1usize..1025,
    ) {
        let want = seed_reference::crc32c(&data);
        let mut acc = 0u32;
        for chunk in data.chunks(step) {
            acc = crc32c_combine(acc, crc32c(chunk), chunk.len() as u64);
        }
        prop_assert_eq!(acc, want);
    }

    /// Closed-form zero-run CRCs equal the oracle scanning real zeroes.
    #[test]
    fn zeros_matches_oracle(len in 0usize..20_000) {
        prop_assert_eq!(crc32c_zeros(len as u64), seed_reference::crc32c(&vec![0u8; len]));
    }
}

#[test]
fn reports_acceleration_state() {
    // Informational: both branches are exercised above regardless.
    println!(
        "crc32c hardware acceleration: {}",
        ros2_buf::hw_acceleration()
    );
}
