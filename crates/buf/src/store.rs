//! The zero-copy extent store: written data kept as `Bytes` handles in a
//! `BTreeMap<addr, extent>`, with lazy per-chunk CRC32C caching.
//!
//! Invariants (checked by the model tests in `tests/extent_model.rs`):
//!
//! * extents are sorted by start address and never overlap;
//! * a read returns exactly overlay-of-writes semantics, with unwritten
//!   gaps reading as zero;
//! * [`ExtentStore::crc_of_range`] equals `crc32c` of the bytes
//!   [`ExtentStore::read`] would return for the same range, always;
//! * a chunk CRC cache entry is dropped whenever its extent is trimmed or
//!   overwritten, so cached CRCs can never describe stale bytes.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use bytes::{Bytes, BytesMut};

use crate::crc::{crc32c, crc32c_combine, crc32c_zeros};

/// CRC cache granularity within an extent (matches the VOS checksum chunk
/// and the NVMe LBA, so record-relative chunk windows line up with the
/// extent-relative cache grid).
pub const CRC_CHUNK: u64 = 4096;

/// Size of the shared all-zero buffer hole reads slice from.
const ZERO_POOL: usize = 4 << 20;

fn shared_zeros() -> &'static Bytes {
    static ZEROS: OnceLock<Bytes> = OnceLock::new();
    ZEROS.get_or_init(|| Bytes::from(vec![0u8; ZERO_POOL]))
}

/// A refcounted all-zero buffer of `len` bytes; zero-copy (a slice of one
/// shared pool) for lengths up to 4 MiB.
pub fn zero_bytes(len: usize) -> Bytes {
    let pool = shared_zeros();
    if len <= pool.len() {
        pool.slice(0..len)
    } else {
        Bytes::from(vec![0u8; len])
    }
}

/// Whether `b` is a slice of the shared zero pool — i.e. known all-zero
/// without reading it. Checksum paths use this to answer zero-run CRCs in
/// closed form instead of scanning megabytes of zeros (hole
/// materialization, zero-fill staging, synthetic throughput payloads).
pub fn is_shared_zeros(b: &Bytes) -> bool {
    let pool = shared_zeros();
    let lo = pool.as_ptr() as usize;
    let hi = lo + pool.len();
    let p = b.as_ptr() as usize;
    p >= lo && p + b.len() <= hi
}

/// Data-plane counters, threaded alongside the booking-core
/// `ResourceStats`: how many payload bytes moved by handle vs by memcpy,
/// and how much CRC work was real scanning vs cache-and-combine.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DataPlaneStats {
    /// Payload bytes that crossed a store boundary via memcpy (stitched
    /// fragmented reads, slice-only writes, synthetic pattern reads).
    pub bytes_copied: u64,
    /// Payload bytes that crossed as refcounted `Bytes` handles/slices.
    pub bytes_zero_copy: u64,
    /// Bytes actually scanned to compute a CRC (cache misses and payload
    /// checksumming at update time).
    pub crc_bytes_scanned: u64,
    /// CRC32C combine operations that replaced a scan.
    pub crc_combines: u64,
    /// Chunk-CRC cache entries seeded by a writer that had already computed
    /// them (update-path checksums handed down), sparing the store its own
    /// first-fill scan of the same bytes.
    pub crc_cache_seeded: u64,
}

impl DataPlaneStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: DataPlaneStats) {
        self.bytes_copied += other.bytes_copied;
        self.bytes_zero_copy += other.bytes_zero_copy;
        self.crc_bytes_scanned += other.crc_bytes_scanned;
        self.crc_combines += other.crc_combines;
        self.crc_cache_seeded += other.crc_cache_seeded;
    }

    /// Fraction of transferred bytes that moved zero-copy (1.0 when idle).
    pub fn zero_copy_rate(&self) -> f64 {
        let total = self.bytes_copied + self.bytes_zero_copy;
        if total == 0 {
            1.0
        } else {
            self.bytes_zero_copy as f64 / total as f64
        }
    }
}

/// One written extent: the adopted buffer plus its lazily filled per-chunk
/// CRC cache (chunk `i` covers extent-relative `[i*CRC_CHUNK,
/// min((i+1)*CRC_CHUNK, len))`).
#[derive(Debug)]
struct Extent {
    data: Bytes,
    crcs: Option<Box<[Option<u32>]>>,
}

impl Extent {
    fn new(data: Bytes) -> Self {
        Extent { data, crcs: None }
    }
    fn end(&self, start: u64) -> u64 {
        start + self.data.len() as u64
    }
}

/// A sparse byte store of non-overlapping zero-copy extents.
#[derive(Debug, Default)]
pub struct ExtentStore {
    extents: BTreeMap<u64, Extent>,
    stats: DataPlaneStats,
}

impl ExtentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ExtentStore::default()
    }

    /// Snapshot of the data-plane counters.
    pub fn stats(&self) -> DataPlaneStats {
        self.stats
    }

    /// Number of live extents.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Total bytes held by live extents.
    pub fn resident_bytes(&self) -> u64 {
        self.extents.values().map(|e| e.data.len() as u64).sum()
    }

    /// Number of distinct `page`-sized pages the live extents touch (the
    /// compatibility metric for the former paged stores' `resident_pages`).
    pub fn covered_pages(&self, page: u64) -> usize {
        let mut pages = 0u64;
        let mut next = 0u64;
        for (&s, e) in &self.extents {
            let first = (s / page).max(next);
            let last = e.end(s).div_ceil(page);
            if last > first {
                pages += last - first;
                next = last;
            }
        }
        pages as usize
    }

    /// Drops every extent (contents read as zero afterwards).
    pub fn clear(&mut self) {
        self.extents.clear();
    }

    /// Removes everything stored in `[at, at+len)`; trimmed neighbours are
    /// split zero-copy. The range reads as zero afterwards.
    pub fn discard(&mut self, at: u64, len: u64) {
        if len > 0 {
            self.carve(at, at + len);
        }
    }

    /// Stores `data` at `at`, adopting the caller's buffer zero-copy.
    /// Overlapped older extents are trimmed/split lazily (`Bytes::slice`).
    pub fn write(&mut self, at: u64, data: Bytes) {
        let len = data.len() as u64;
        if len == 0 {
            return;
        }
        self.carve(at, at + len);
        self.stats.bytes_zero_copy += len;
        self.extents.insert(at, Extent::new(data));
    }

    /// Stores a borrowed slice (one copy into a fresh buffer — for callers
    /// that do not own a `Bytes` handle).
    pub fn write_slice(&mut self, at: u64, data: &[u8]) {
        let len = data.len() as u64;
        if len == 0 {
            return;
        }
        self.carve(at, at + len);
        self.stats.bytes_copied += len;
        self.extents
            .insert(at, Extent::new(Bytes::copy_from_slice(data)));
    }

    /// Seeds the per-chunk CRC cache of the extent that starts exactly at
    /// `at` — for writers (the VOS update path) that computed chunk CRCs of
    /// the written bytes anyway. `crcs` must yield one CRC32C per
    /// [`CRC_CHUNK`] of the extent's data, in order, covering the whole
    /// extent (chunk `i` over `[i*CRC_CHUNK, min((i+1)*CRC_CHUNK, len))`);
    /// a length mismatch or a missing extent leaves the lazy cache in
    /// place. Debug builds verify every seeded CRC against the bytes.
    pub fn seed_crcs<I>(&mut self, at: u64, crcs: I)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        let Some(ext) = self.extents.get_mut(&at) else {
            return;
        };
        let nchunks = (ext.data.len() as u64).div_ceil(CRC_CHUNK) as usize;
        if crcs.len() != nchunks {
            return;
        }
        let table: Box<[Option<u32>]> = crcs.map(Some).collect();
        #[cfg(debug_assertions)]
        for (i, c) in table.iter().enumerate() {
            let lo = i * CRC_CHUNK as usize;
            let hi = (lo + CRC_CHUNK as usize).min(ext.data.len());
            debug_assert_eq!(
                c.unwrap(),
                crc32c(&ext.data[lo..hi]),
                "seeded CRC for chunk {i} does not match the written bytes"
            );
        }
        ext.crcs = Some(table);
        self.stats.crc_cache_seeded += nchunks as u64;
    }

    /// Clears `[at, end)` of existing extents, splitting partially
    /// overlapped neighbours with zero-copy slices.
    fn carve(&mut self, at: u64, end: u64) {
        // A neighbour starting before `at` may reach into the range.
        if let Some((&s, e)) = self.extents.range(..at).next_back() {
            if e.end(s) > at {
                let old = self.extents.remove(&s).expect("present");
                let old_end = old.end(s);
                let head = old.data.slice(0..(at - s) as usize);
                self.extents.insert(s, Extent::new(head));
                if old_end > end {
                    let tail = old.data.slice((end - s) as usize..);
                    self.extents.insert(end, Extent::new(tail));
                }
            }
        }
        // Extents starting inside the range are removed; one may spill past
        // the end and keeps its tail.
        let starts: Vec<u64> = self.extents.range(at..end).map(|(&s, _)| s).collect();
        for s in starts {
            let old = self.extents.remove(&s).expect("present");
            if old.end(s) > end {
                let tail = old.data.slice((end - s) as usize..);
                self.extents.insert(end, Extent::new(tail));
            }
        }
    }

    /// Reads `[at, at+len)`. A read fully contained in one extent returns a
    /// zero-copy slice; a read of a hole returns a shared zero buffer; only
    /// genuinely fragmented reads stitch into a fresh buffer.
    pub fn read(&mut self, at: u64, len: usize) -> Bytes {
        if len == 0 {
            return Bytes::new();
        }
        let end = at + len as u64;
        // Fast path: one extent covers the whole range.
        if let Some((&s, e)) = self.extents.range(..=at).next_back() {
            if e.end(s) >= end {
                self.stats.bytes_zero_copy += len as u64;
                let off = (at - s) as usize;
                return e.data.slice(off..off + len);
            }
        }
        let from = self.scan_start(at);
        let any = self.extents.range(from..end).any(|(&s, e)| e.end(s) > at);
        if !any {
            // Pure hole: refcounted zeros.
            let out = zero_bytes(len);
            if len <= ZERO_POOL {
                self.stats.bytes_zero_copy += len as u64;
            } else {
                self.stats.bytes_copied += len as u64;
            }
            return out;
        }
        // Fragmented: stitch.
        let mut out = BytesMut::zeroed(len);
        for (&s, e) in self.extents.range(from..end) {
            let e_end = e.end(s);
            if e_end <= at {
                continue;
            }
            let lo = at.max(s);
            let hi = end.min(e_end);
            out[(lo - at) as usize..(hi - at) as usize]
                .copy_from_slice(&e.data[(lo - s) as usize..(hi - s) as usize]);
        }
        self.stats.bytes_copied += len as u64;
        out.freeze()
    }

    /// The first map key worth scanning for overlaps with a range starting
    /// at `at`: the nearest extent starting at or before `at`.
    fn scan_start(&self, at: u64) -> u64 {
        self.extents
            .range(..=at)
            .next_back()
            .map(|(&s, _)| s)
            .unwrap_or(at)
    }

    /// The CRC32C of the bytes [`Self::read`]`(at, len)` would return,
    /// derived from cached per-chunk CRCs and hole combines wherever
    /// possible; only uncached chunk bytes are scanned (then cached).
    pub fn crc_of_range(&mut self, at: u64, len: u64) -> u32 {
        if len == 0 {
            return 0;
        }
        let end = at + len;
        let from = self.scan_start(at);
        // One allocation-free pass: `range_mut` hands out each overlapping
        // extent mutably (cache fills) alongside the separate stats field.
        let Self { extents, stats } = self;
        let mut acc = 0u32;
        let mut pos = at;
        for (&s, ext) in extents.range_mut(from..end) {
            let e_end = s + ext.data.len() as u64;
            if e_end <= at {
                continue;
            }
            let (lo, hi) = (at.max(s), end.min(e_end));
            if lo > pos {
                acc = crc32c_combine(acc, crc32c_zeros(lo - pos), lo - pos);
                stats.crc_combines += 1;
            }
            let piece = extent_range_crc(ext, lo - s, hi - s, stats);
            acc = crc32c_combine(acc, piece, hi - lo);
            stats.crc_combines += 1;
            pos = hi;
        }
        if pos < end {
            acc = crc32c_combine(acc, crc32c_zeros(end - pos), end - pos);
            stats.crc_combines += 1;
        }
        acc
    }
}

/// CRC of extent-relative `[rs, re)`, using the chunk cache for every
/// grid-aligned chunk in the range and scanning only misses and unaligned
/// head/tail fragments.
fn extent_range_crc(ext: &mut Extent, rs: u64, re: u64, stats: &mut DataPlaneStats) -> u32 {
    let elen = ext.data.len() as u64;
    debug_assert!(rs < re && re <= elen);
    let nchunks = elen.div_ceil(CRC_CHUNK) as usize;
    let mut acc = 0u32;
    let mut pos = rs;
    let mut first = true;
    while pos < re {
        let ci = (pos / CRC_CHUNK) as usize;
        let c_lo = ci as u64 * CRC_CHUNK;
        let c_hi = (c_lo + CRC_CHUNK).min(elen);
        let (crc, hi) = if pos == c_lo && re >= c_hi {
            // Whole grid chunk: serve from (or fill) the cache.
            let crcs = ext
                .crcs
                .get_or_insert_with(|| vec![None; nchunks].into_boxed_slice());
            let crc = match crcs[ci] {
                Some(c) => c,
                None => {
                    let c = crc32c(&ext.data[c_lo as usize..c_hi as usize]);
                    stats.crc_bytes_scanned += c_hi - c_lo;
                    crcs[ci] = Some(c);
                    c
                }
            };
            (crc, c_hi)
        } else {
            // Unaligned fragment: scan just those bytes.
            let hi = re.min(c_hi);
            stats.crc_bytes_scanned += hi - pos;
            (crc32c(&ext.data[pos as usize..hi as usize]), hi)
        };
        if first {
            acc = crc;
            first = false;
        } else {
            acc = crc32c_combine(acc, crc, hi - pos);
            stats.crc_combines += 1;
        }
        pos = hi;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip_zero_copy() {
        let mut s = ExtentStore::new();
        let payload = Bytes::from(vec![7u8; 1 << 20]);
        s.write(4096, payload.clone());
        let back = s.read(4096, 1 << 20);
        assert_eq!(back, payload);
        assert_eq!(s.stats().bytes_copied, 0);
        assert_eq!(s.stats().bytes_zero_copy, 2 << 20); // write + read
                                                        // Interior read is still zero-copy.
        let mid = s.read(4096 + 1000, 4096);
        assert_eq!(&mid[..], &payload[1000..1000 + 4096]);
        assert_eq!(s.stats().bytes_copied, 0);
    }

    #[test]
    fn holes_read_zero_and_overlays_resolve() {
        let mut s = ExtentStore::new();
        s.write(100, Bytes::from(vec![1u8; 100]));
        s.write(150, Bytes::from(vec![2u8; 100]));
        let r = s.read(50, 250);
        assert!(r[..50].iter().all(|&b| b == 0));
        assert!(r[50..100].iter().all(|&b| b == 1));
        assert!(r[100..200].iter().all(|&b| b == 2));
        assert!(r[200..].iter().all(|&b| b == 0));
        assert_eq!(s.extent_count(), 2);
    }

    #[test]
    fn discard_trims_and_splits() {
        let mut s = ExtentStore::new();
        s.write(0, Bytes::from(vec![9u8; 300]));
        s.discard(100, 100);
        assert_eq!(s.extent_count(), 2);
        let r = s.read(0, 300);
        assert!(r[..100].iter().all(|&b| b == 9));
        assert!(r[100..200].iter().all(|&b| b == 0));
        assert!(r[200..].iter().all(|&b| b == 9));
    }

    #[test]
    fn crc_of_range_matches_read() {
        let mut s = ExtentStore::new();
        s.write(
            10,
            Bytes::from((0..200u32).map(|i| i as u8).collect::<Vec<_>>()),
        );
        s.write(4096, Bytes::from(vec![5u8; 10_000]));
        for (at, len) in [
            (0u64, 64usize),
            (10, 200),
            (0, 20_000),
            (4096, 4096),
            (5000, 8192),
        ] {
            let data = s.read(at, len);
            assert_eq!(
                s.crc_of_range(at, len as u64),
                crc32c(&data),
                "({at},{len})"
            );
        }
        // Second pass is served from cache and combines: no new scanning
        // for the chunk-aligned query.
        let before = s.stats().crc_bytes_scanned;
        s.crc_of_range(4096, 4096);
        assert_eq!(s.stats().crc_bytes_scanned, before);
    }

    #[test]
    fn overwrite_invalidates_cached_crcs() {
        let mut s = ExtentStore::new();
        s.write(0, Bytes::from(vec![1u8; 8192]));
        let crc1 = s.crc_of_range(0, 8192);
        s.write(4096, Bytes::from(vec![2u8; 100]));
        let crc2 = s.crc_of_range(0, 8192);
        assert_ne!(crc1, crc2);
        assert_eq!(crc2, crc32c(&s.read(0, 8192)));
    }

    #[test]
    fn seeded_crcs_replace_first_fill_scan() {
        let mut s = ExtentStore::new();
        let data = Bytes::from(vec![0x5Au8; 10_000]); // 3 chunks, last partial
        let chunk_crcs: Vec<u32> = data.chunks(CRC_CHUNK as usize).map(crc32c).collect();
        s.write(8192, data.clone());
        s.seed_crcs(8192, chunk_crcs.iter().copied());
        assert_eq!(s.stats().crc_cache_seeded, 3);
        let before = s.stats().crc_bytes_scanned;
        assert_eq!(s.crc_of_range(8192, 10_000), crc32c(&data));
        assert_eq!(
            s.stats().crc_bytes_scanned,
            before,
            "seeded chunks must not be rescanned on first verify"
        );
        // Overwrite drops the seeded cache like any other cached CRC.
        s.write(8192 + 4096, Bytes::from(vec![9u8; 100]));
        assert_eq!(s.crc_of_range(8192, 10_000), crc32c(&s.read(8192, 10_000)));
    }

    #[test]
    fn seed_mismatch_is_ignored() {
        let mut s = ExtentStore::new();
        s.write(0, Bytes::from(vec![1u8; 8192]));
        // Wrong chunk count: must leave the lazy cache untouched.
        s.seed_crcs(0, [0u32; 1].iter().copied());
        assert_eq!(s.stats().crc_cache_seeded, 0);
        // No extent at the address: no-op.
        s.seed_crcs(4096, [0u32; 1].iter().copied());
        assert_eq!(s.stats().crc_cache_seeded, 0);
        assert_eq!(s.crc_of_range(0, 8192), crc32c(&s.read(0, 8192)));
    }

    #[test]
    fn covered_pages_merges_ranges() {
        let mut s = ExtentStore::new();
        s.write(4096 - 123, Bytes::from(vec![1u8; 10_000]));
        assert_eq!(s.covered_pages(4096), 4);
        s.write(4096 - 123, Bytes::from(vec![2u8; 10_000])); // same span
        assert_eq!(s.covered_pages(4096), 4);
    }
}
