//! A counting global allocator for allocation-regression tests.
//!
//! The metadata hot path (key construction, index lookups, repeat fetches)
//! is supposed to be allocation-free; counters here let a test binary
//! install [`CountingAlloc`] as its `#[global_allocator]` and assert exact
//! allocation deltas around a code region:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ros2_buf::CountingAlloc = ros2_buf::CountingAlloc;
//!
//! let before = ros2_buf::allocation_count();
//! hot_path();
//! assert_eq!(ros2_buf::allocation_count() - before, 0);
//! ```
//!
//! Counters are process-global atomics; tests that measure deltas must not
//! run concurrently with other allocating tests in the same binary (use a
//! dedicated integration-test file or serialize with a lock).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A `System`-backed allocator that counts every allocation (including
/// reallocations, which acquire fresh memory).
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counters are
// side-effect-only atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total heap allocations observed since process start (0 unless
/// [`CountingAlloc`] is installed as the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator since process start.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}
