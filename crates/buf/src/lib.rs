//! The shared functional data plane: one zero-copy extent store backing
//! every byte-addressed memory in the workspace (registered NIC memory,
//! NVMe namespaces, the SCM heap), plus a hardware-rate CRC32C with a
//! GF(2) combinator so checksums over stored data can be *derived* from
//! cached per-chunk CRCs instead of rescanned.
//!
//! Before this crate existed the workspace carried three near-identical
//! 4 KiB-paged copy stores; every write memcpy'd payload bytes into pages
//! and every read memcpy'd them back out. The extent store keeps written
//! data as refcounted [`bytes::Bytes`] handles instead — a write *adopts*
//! the caller's buffer, and a read contained in one extent returns a
//! zero-copy slice — which is exactly the rendezvous discipline the source
//! paper's RDMA data path is built around.

#![warn(missing_docs)]

pub mod alloc_count;
pub mod crc;
pub mod store;

pub use alloc_count::{allocated_bytes, allocation_count, CountingAlloc};
pub use crc::{
    crc32c, crc32c_append, crc32c_append_sw, crc32c_combine, crc32c_zeros, hw_acceleration,
};
pub use store::{is_shared_zeros, zero_bytes, DataPlaneStats, ExtentStore, CRC_CHUNK};
