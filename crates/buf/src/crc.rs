//! CRC32C (Castagnoli) at hardware rate, with a GF(2) combinator.
//!
//! Three evaluation paths, all bit-identical:
//!
//! * **SSE4.2** — `_mm_crc32_u64` via `std::arch`, selected by runtime
//!   feature detection on x86-64. ~20 GB/s per core, the rate the timing
//!   model ([`checksum_cost`] in `ros2-hw`) already charges.
//! * **slicing-by-16** — the portable software path, 8-16 GB/s class.
//! * **combine** — [`crc32c_combine`] concatenates two finalized CRCs in
//!   O(popcount(len)) 32x32 GF(2) matrix applications without touching a
//!   single payload byte. This is what lets stores answer "what is the CRC
//!   of this range" from cached per-chunk CRCs.
//!
//! The polynomial, bit order, and init/finalize convention match the
//! original table-driven implementation in `ros2_daos::checksum` (RFC 3720
//! vectors), which now delegates here.

/// The CRC32C polynomial (reflected).
pub const POLY: u32 = 0x82F6_3B78;

// ---------------------------------------------------------------- tables --

/// 16-entry-per-byte lookup table for the slicing-by-16 software path.
fn table16() -> &'static [[u32; 256]; 16] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[[u32; 256]; 16]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 16]);
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            t[0][i as usize] = crc;
        }
        for i in 0..256 {
            for slice in 1..16 {
                let prev = t[slice - 1][i];
                t[slice][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Raw (non-inverted) update over `data`, slicing-by-16.
fn update_sw(mut crc: u32, data: &[u8]) -> u32 {
    let t = table16();
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let a = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let b = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let c = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        let d = u32::from_le_bytes(chunk[12..16].try_into().unwrap());
        crc = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][(a >> 24) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][(b >> 24) as usize]
            ^ t[7][(c & 0xFF) as usize]
            ^ t[6][((c >> 8) & 0xFF) as usize]
            ^ t[5][((c >> 16) & 0xFF) as usize]
            ^ t[4][(c >> 24) as usize]
            ^ t[3][(d & 0xFF) as usize]
            ^ t[2][((d >> 8) & 0xFF) as usize]
            ^ t[1][((d >> 16) & 0xFF) as usize]
            ^ t[0][(d >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

// -------------------------------------------------------------- hardware --

/// Whether the SSE4.2 CRC32 instruction path is in use on this host.
pub fn hw_acceleration() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("sse4.2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Raw update via the SSE4.2 `crc32` instruction family.
///
/// # Safety
/// Caller must have verified SSE4.2 support (see [`hw_acceleration`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = data.chunks_exact(8);
    let mut crc64 = crc as u64;
    for chunk in &mut chunks {
        crc64 = _mm_crc32_u64(crc64, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut crc = crc64 as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

fn update_auto(crc: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if hw_acceleration() {
            // SAFETY: feature presence just verified.
            return unsafe { update_hw(crc, data) };
        }
    }
    update_sw(crc, data)
}

// ------------------------------------------------------------ public API --

/// Computes the CRC32C of `data` (hardware path when available).
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continues a CRC32C from a previous finalized value (for chunked
/// computation); hardware path when available.
pub fn crc32c_append(state: u32, data: &[u8]) -> u32 {
    !update_auto(!state, data)
}

/// [`crc32c_append`] forced onto the portable slicing-by-16 path
/// (equivalence testing, non-x86 hosts).
pub fn crc32c_append_sw(state: u32, data: &[u8]) -> u32 {
    !update_sw(!state, data)
}

// --------------------------------------------------------------- combine --

/// A 32x32 GF(2) matrix: row `n` is the image of bit `n`.
type Gf2Matrix = [u32; 32];

fn gf2_times(mat: &Gf2Matrix, mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_square(src: &Gf2Matrix) -> Gf2Matrix {
    let mut dst = [0u32; 32];
    for (n, row) in src.iter().enumerate() {
        dst[n] = gf2_times(src, *row);
    }
    dst
}

/// Number of cached byte-shift operators: lengths up to 2^48 bytes.
const SHIFT_LEVELS: usize = 48;

/// `SHIFT[k]` advances a finalized CRC over `2^k` zero bytes.
fn shift_matrices() -> &'static [Gf2Matrix; SHIFT_LEVELS] {
    use std::sync::OnceLock;
    static MATS: OnceLock<Box<[Gf2Matrix; SHIFT_LEVELS]>> = OnceLock::new();
    MATS.get_or_init(|| {
        // Operator for one zero *bit* (zlib's crc32_combine construction).
        let mut odd: Gf2Matrix = [0u32; 32];
        odd[0] = POLY;
        let mut row = 1u32;
        for entry in odd.iter_mut().skip(1) {
            *entry = row;
            row <<= 1;
        }
        // Square up to one zero *byte*: 1 -> 2 -> 4 -> 8 bits.
        let two = gf2_square(&odd);
        let four = gf2_square(&two);
        let byte = gf2_square(&four);
        let mut mats = Box::new([[0u32; 32]; SHIFT_LEVELS]);
        mats[0] = byte;
        for k in 1..SHIFT_LEVELS {
            mats[k] = gf2_square(&mats[k - 1]);
        }
        mats
    })
}

/// Combines finalized CRCs: given `crc_a = crc32c(A)` and
/// `crc_b = crc32c(B)`, returns `crc32c(A ++ B)` where `len_b = B.len()`,
/// in O(popcount(len_b)) cached-matrix applications — no payload bytes are
/// read. The zlib `crc32_combine` algorithm with the byte-shift operators
/// precomputed once per process.
pub fn crc32c_combine(crc_a: u32, crc_b: u32, len_b: u64) -> u32 {
    debug_assert!(len_b < 1 << SHIFT_LEVELS, "combine length >= 2^48 bytes");
    let mats = shift_matrices();
    let mut v = crc_a;
    let mut len = len_b;
    let mut k = 0usize;
    while len != 0 {
        if len & 1 != 0 {
            v = gf2_times(&mats[k], v);
        }
        len >>= 1;
        k += 1;
    }
    v ^ crc_b
}

/// The CRC32C of `len` zero bytes, in O(log len) combines (never scans).
/// Lengths are bounded by the cached shift operators: `len < 2^48`
/// (256 TiB — beyond any simulated range; asserted in debug builds).
pub fn crc32c_zeros(len: u64) -> u32 {
    debug_assert!(len < 1 << SHIFT_LEVELS, "zero-run length >= 2^48 bytes");
    use std::sync::OnceLock;
    /// `Z[k]` = CRC32C of `2^k` zero bytes.
    static ZERO_CRCS: OnceLock<[u32; SHIFT_LEVELS]> = OnceLock::new();
    let z = ZERO_CRCS.get_or_init(|| {
        let mut z = [0u32; SHIFT_LEVELS];
        z[0] = crc32c_append_sw(0, &[0u8]);
        for k in 1..SHIFT_LEVELS {
            z[k] = crc32c_combine(z[k - 1], z[k - 1], 1 << (k - 1));
        }
        z
    });
    let mut acc = 0u32; // CRC of the empty string
    for (k, &zk) in z.iter().enumerate() {
        if len & (1u64 << k) != 0 {
            acc = crc32c_combine(acc, zk, 1 << k);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_both_paths() {
        // RFC 3720 / iSCSI test vectors.
        for f in [crc32c_append, crc32c_append_sw] {
            assert_eq!(f(0, b""), 0x0000_0000);
            assert_eq!(f(0, &[0u8; 32]), 0x8A91_36AA);
            assert_eq!(f(0, &[0xFFu8; 32]), 0x62A8_AB43);
            let ascending: Vec<u8> = (0..32).collect();
            assert_eq!(f(0, &ascending), 0x46DD_794E);
            assert_eq!(f(0, b"123456789"), 0xE306_9283);
        }
    }

    #[test]
    fn combine_matches_direct() {
        let a: Vec<u8> = (0..1500u32).map(|i| (i * 31 % 251) as u8).collect();
        let b: Vec<u8> = (0..777u32).map(|i| (i * 7 % 253) as u8).collect();
        let mut whole = a.clone();
        whole.extend_from_slice(&b);
        assert_eq!(
            crc32c_combine(crc32c(&a), crc32c(&b), b.len() as u64),
            crc32c(&whole)
        );
        // Degenerate lengths.
        assert_eq!(crc32c_combine(crc32c(&a), 0, 0), crc32c(&a));
        assert_eq!(crc32c_combine(0, crc32c(&b), b.len() as u64), crc32c(&b));
    }

    #[test]
    fn zeros_matches_direct() {
        for len in [0usize, 1, 7, 64, 4096, 4097, 100_000] {
            assert_eq!(
                crc32c_zeros(len as u64),
                crc32c(&vec![0u8; len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn chunked_append_equals_whole() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let whole = crc32c(&data);
        let mut st = 0u32;
        for chunk in data.chunks(97) {
            st = crc32c_append(st, chunk);
        }
        assert_eq!(st, whole);
    }
}
