//! CPU and software-path cost models: host x86 cores, BlueField-3 ARM cores,
//! per-transport per-operation costs, and the shared kernel block-layer
//! stage that produces the paper's local "software/host-path limit".
//!
//! Costs are expressed for a *host-grade* core (EPYC 7443 class) and scaled
//! by [`CoreClass::speed_factor`] when they run on DPU ARM cores. The DPU
//! TCP **receive** path carries an additional per-byte multiplier and a
//! limited receive-queue spread — together these reproduce the paper's
//! central DPU finding: "good TX, weak RX".

use ros2_sim::SimDuration;

/// Which silicon a cost executes on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CoreClass {
    /// Server-grade x86 core (AMD EPYC 7443, §4.1).
    HostX86,
    /// BlueField-3 Arm Cortex-A78AE core.
    DpuArm,
}

impl CoreClass {
    /// Throughput of one core relative to a host core.
    ///
    /// The A78AE runs at lower clocks with a smaller memory subsystem; 0.55×
    /// is consistent with published BlueField-3 per-core comparisons and
    /// yields the paper's 20–40 % DPU small-I/O gap once the rest of the
    /// stack is accounted for.
    pub fn speed_factor(self) -> f64 {
        match self {
            CoreClass::HostX86 => 1.0,
            CoreClass::DpuArm => 0.55,
        }
    }

    /// Scales a host-calibrated cost to this core class.
    pub fn scale(self, host_cost: SimDuration) -> SimDuration {
        match self {
            CoreClass::HostX86 => host_cost,
            CoreClass::DpuArm => host_cost.mul_f64(1.0 / self.speed_factor()),
        }
    }
}

/// Picoseconds-per-byte helper: `bytes * ps_per_byte` as a duration.
pub fn per_byte(bytes: u64, ps_per_byte: u64) -> SimDuration {
    SimDuration::from_nanos((bytes as u128 * ps_per_byte as u128 / 1000) as u64)
}

/// CPU cost table for one transport direction, calibrated for a host core.
#[derive(Copy, Clone, Debug)]
pub struct TransportCost {
    /// Fixed per-operation cost on the sending core.
    pub send_per_op: SimDuration,
    /// Per-byte sending cost (picoseconds per byte) — copies, segmentation.
    pub send_ps_per_byte: u64,
    /// Fixed per-operation cost on the receiving core.
    pub recv_per_op: SimDuration,
    /// Per-byte receive cost (ps/B) — copies, reassembly, checksums.
    pub recv_ps_per_byte: u64,
    /// Per-message time on a *serialized* per-connection stage (per-socket
    /// ordered protocol processing).
    pub serialized_per_op: SimDuration,
    /// Per-message time on the node-wide serialized kernel stage (softirq
    /// bottom half; zero for kernel-bypass transports). This is what keeps
    /// TCP small-I/O from scaling with cores in Fig. 4c: a 4 KiB I/O is two
    /// messages, so the host TCP node cap lands near
    /// `1 / (2 × 1.1 µs) ≈ 455 K` IOPS — matching both the Fig. 4c plateau
    /// and the Fig. 5c host-TCP band.
    pub kernel_per_msg: SimDuration,
}

impl TransportCost {
    /// Kernel TCP over the ConnectX NIC (host calibration).
    ///
    /// ~4 µs of socket work per message on each end plus copy costs; the
    /// serialized kernel stage caps a node near 455 K 4 KiB IOPS no matter
    /// how many cores poll — the "limited benefit from additional
    /// client/server cores" of Fig. 4c.
    pub fn tcp() -> Self {
        TransportCost {
            send_per_op: SimDuration::from_nanos(4_000),
            send_ps_per_byte: 120,
            recv_per_op: SimDuration::from_nanos(4_000),
            recv_ps_per_byte: 180,
            serialized_per_op: SimDuration::from_nanos(2_000),
            kernel_per_msg: SimDuration::from_nanos(1_100),
        }
    }

    /// RDMA (UCX `rc`/`dc_x` or libfabric verbs) — kernel bypass, zero copy.
    ///
    /// The initiator spends ~1.2 µs posting and reaping; one-sided data
    /// placement costs the responder CPU nothing (the NIC DMAs directly),
    /// and there is no kernel stage at all.
    pub fn rdma() -> Self {
        TransportCost {
            send_per_op: SimDuration::from_nanos(1_200),
            send_ps_per_byte: 0,
            recv_per_op: SimDuration::from_nanos(300),
            recv_ps_per_byte: 0,
            serialized_per_op: SimDuration::from_nanos(450),
            kernel_per_msg: SimDuration::ZERO,
        }
    }
}

/// The DPU's asymmetric TCP penalty (§4.4, §5: "a DPU TCP receive-path
/// bottleneck ... good TX, weak RX").
#[derive(Copy, Clone, Debug)]
pub struct DpuTcpRxModel {
    /// Extra multiplier on per-byte receive cost, on top of the ARM core
    /// slowdown (memory-copy bound on the A78AE's narrower mesh).
    pub rx_byte_multiplier: f64,
    /// How many cores RX flow steering can spread across (RSS queues the
    /// OVS/kernel datapath actually uses on the DPU).
    pub rx_queue_spread: usize,
    /// Per-flow contention: effective per-byte cost grows by this fraction
    /// for every concurrent flow beyond `contention_free_flows` (cache and
    /// mesh thrash). Produces the Fig. 5a four-SSD degradation.
    pub contention_per_flow: f64,
    /// Number of flows served without contention penalty.
    pub contention_free_flows: usize,
}

impl DpuTcpRxModel {
    /// Default BlueField-3 calibration.
    pub fn bluefield3() -> Self {
        DpuTcpRxModel {
            rx_byte_multiplier: 3.4,
            rx_queue_spread: 4,
            contention_per_flow: 0.10,
            contention_free_flows: 8,
        }
    }

    /// Effective RX per-byte cost (ps/B) on the DPU for `flows` concurrent
    /// streams, given the host-calibrated base cost.
    pub fn effective_rx_ps_per_byte(&self, base_ps: u64, flows: usize) -> u64 {
        let arm = CoreClass::DpuArm.speed_factor();
        let contended = 1.0
            + self.contention_per_flow * flows.saturating_sub(self.contention_free_flows) as f64;
        (base_ps as f64 * self.rx_byte_multiplier * contended / arm) as u64
    }
}

/// The host software path for *local* I/O (io_uring through the kernel
/// block layer). The shared stage serializes ~1.6 µs per request across all
/// jobs, capping local 4 KiB IOPS near 600 K regardless of drive count —
/// exactly the Fig. 3b/3d observation that the limit is "software/host-path,
/// not media".
#[derive(Copy, Clone, Debug)]
pub struct HostPathModel {
    /// Per-request submission cost on the submitting job's core (syscall
    /// batch amortized, iovec setup).
    pub per_op_job: SimDuration,
    /// Per-completion reap cost on the job's core (CQE processing).
    pub per_op_reap: SimDuration,
    /// Per-request cost on the shared, serialized block-layer stage.
    pub per_op_shared: SimDuration,
    /// Per-byte kernel DMA-mapping cost on the submitting core (ps/B).
    pub ps_per_byte: u64,
}

impl HostPathModel {
    /// Default Linux io_uring calibration (O_DIRECT, registered buffers).
    pub fn iouring() -> Self {
        HostPathModel {
            per_op_job: SimDuration::from_nanos(1_400),
            per_op_reap: SimDuration::from_nanos(600),
            per_op_shared: SimDuration::from_nanos(1_600),
            ps_per_byte: 12,
        }
    }

    /// The IOPS ceiling imposed by the shared stage.
    pub fn shared_iops_cap(&self) -> f64 {
        1.0 / self.per_op_shared.as_secs_f64()
    }
}

/// Cost of one CRC32C checksum pass over `bytes` (hardware-assisted, ~12
/// GB/s per host core). DAOS end-to-end checksums pay this on the server.
pub fn checksum_cost(bytes: u64) -> SimDuration {
    per_byte(bytes, 80)
}

/// Cost of one AES-GCM pass over `bytes` on the DPU's inline crypto engine
/// (~50 GB/s fixed-function; effectively free for the data rates here but
/// modelled for the ablation bench).
pub fn inline_crypto_cost(bytes: u64) -> SimDuration {
    per_byte(bytes, 18)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpu_core_is_slower() {
        let host = SimDuration::from_micros(10);
        let dpu = CoreClass::DpuArm.scale(host);
        assert!(dpu > host);
        let ratio = dpu.as_nanos() as f64 / host.as_nanos() as f64;
        assert!((1.7..2.0).contains(&ratio), "ratio {ratio}");
        assert_eq!(CoreClass::HostX86.scale(host), host);
    }

    #[test]
    fn per_byte_math() {
        // 1 MiB at 120 ps/B = 125.8 us.
        let d = per_byte(1 << 20, 120);
        assert_eq!(d.as_nanos(), (1u64 << 20) * 120 / 1000);
    }

    #[test]
    fn tcp_kernel_stage_caps_small_io() {
        let tcp = TransportCost::tcp();
        // A 4 KiB I/O is a request + a response: two kernel-stage passes
        // per node. The cap lands in the 400-500K band (Fig. 4c plateau,
        // Fig. 5c host band).
        let cap = 1.0 / (2.0 * tcp.kernel_per_msg.as_secs_f64());
        assert!((4.0e5..5.0e5).contains(&cap), "tcp kernel cap {cap}");
        // On DPU silicon the same stage caps near 250K, and with the DPU
        // recv-path costs the end-to-end lands in the paper's 0.18-0.23M.
        let dpu_cap = 1.0 / (2.0 * CoreClass::DpuArm.scale(tcp.kernel_per_msg).as_secs_f64());
        assert!(
            (2.2e5..2.8e5).contains(&dpu_cap),
            "dpu tcp kernel cap {dpu_cap}"
        );
    }

    #[test]
    fn rdma_is_cheaper_than_tcp_everywhere() {
        let tcp = TransportCost::tcp();
        let rdma = TransportCost::rdma();
        assert!(rdma.send_per_op < tcp.send_per_op);
        assert!(rdma.recv_per_op < tcp.recv_per_op);
        assert!(rdma.send_ps_per_byte < tcp.send_ps_per_byte);
        assert!(rdma.serialized_per_op < tcp.serialized_per_op);
        assert_eq!(rdma.kernel_per_msg, SimDuration::ZERO);
    }

    #[test]
    fn dpu_rx_contention_grows_with_flows() {
        let m = DpuTcpRxModel::bluefield3();
        let base = TransportCost::tcp().recv_ps_per_byte;
        let few = m.effective_rx_ps_per_byte(base, 4);
        let many = m.effective_rx_ps_per_byte(base, 32);
        assert!(many > few, "contention must raise cost: {few} -> {many}");
        // Sanity: 4-flow RX throughput across the spread lands in the
        // 1.5-3.5 GiB/s band the paper reports for DPU TCP reads.
        let per_core_bps = 1e12 / few as f64;
        let agg = per_core_bps * m.rx_queue_spread as f64 / (1u64 << 30) as f64;
        assert!((1.5..4.5).contains(&agg), "DPU RX ceiling {agg} GiB/s");
    }

    #[test]
    fn host_path_cap_near_600k() {
        let hp = HostPathModel::iouring();
        let cap = hp.shared_iops_cap();
        assert!((5.5e5..7.0e5).contains(&cap), "host path cap {cap}");
    }

    #[test]
    fn crypto_cheaper_than_checksum_per_byte() {
        assert!(inline_crypto_cost(1 << 20) < checksum_cost(1 << 20));
    }
}
