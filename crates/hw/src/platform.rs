//! The paper's §4.1 hardware platform, expressed as configuration structs
//! that deployment worlds instantiate.

use crate::cpu::CoreClass;
use crate::link::{NicModel, SwitchModel};
use crate::nvme::NvmeModel;

/// A compute or storage node's processor complement.
#[derive(Copy, Clone, Debug)]
pub struct CpuComplement {
    /// Core silicon class.
    pub class: CoreClass,
    /// Number of physical cores available to the experiment.
    pub cores: usize,
}

/// The storage server (§4.1): 2 NUMA nodes, 128 cores, 251 GiB; experiments
/// pin to NUMA node 0 with 4 NVMe SSDs and a ConnectX-6.
#[derive(Clone, Debug)]
pub struct StorageServerConfig {
    /// Cores available after NUMA-0 pinning.
    pub cpu: CpuComplement,
    /// DRAM in bytes.
    pub dram: u64,
    /// Storage-class-memory (PMEM) capacity for the DAOS SCM tier.
    pub scm: u64,
    /// The NVMe devices attached to NUMA 0.
    pub nvme: Vec<NvmeModel>,
    /// Network port.
    pub nic: NicModel,
}

impl StorageServerConfig {
    /// The paper's storage server with `ssds` drives enabled (1 or 4).
    pub fn paper(ssds: usize) -> Self {
        assert!((1..=4).contains(&ssds), "paper uses 1 or 4 SSDs");
        StorageServerConfig {
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: 64, // NUMA node 0 of the 128-core box
            },
            dram: 251 * (1 << 30) / 2,
            scm: 128 * (1 << 30),
            nvme: (0..ssds).map(|_| NvmeModel::enterprise_1600()).collect(),
            nic: NicModel::connectx6(),
        }
    }
}

/// The server-grade CPU client (§4.1): dual AMD EPYC 7443, 48 physical
/// cores, 251 GiB DRAM, ConnectX-6.
#[derive(Copy, Clone, Debug)]
pub struct HostClientConfig {
    /// Processor complement.
    pub cpu: CpuComplement,
    /// DRAM in bytes.
    pub dram: u64,
    /// Network port.
    pub nic: NicModel,
}

impl HostClientConfig {
    /// The paper's host client.
    pub fn paper() -> Self {
        HostClientConfig {
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: 48,
            },
            dram: 251 * (1 << 30),
            nic: NicModel::connectx6(),
        }
    }
}

/// The BlueField-3 DPU (§4.1): 16 Arm Cortex-A78AE cores, 30 GiB DRAM,
/// integrated ConnectX-7.
#[derive(Copy, Clone, Debug)]
pub struct DpuConfig {
    /// Processor complement (ARM cores).
    pub cpu: CpuComplement,
    /// Onboard DRAM in bytes — also the data-plane buffer pool, since all
    /// payloads terminate in DPU DRAM in the prototype (§3.2).
    pub dram: u64,
    /// Integrated network controller.
    pub nic: NicModel,
}

impl DpuConfig {
    /// The paper's BlueField-3.
    pub fn bluefield3() -> Self {
        DpuConfig {
            cpu: CpuComplement {
                class: CoreClass::DpuArm,
                cores: 16,
            },
            dram: 30 * (1 << 30),
            nic: NicModel::connectx7(),
        }
    }
}

/// Where the DAOS client (DFS data plane) runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ClientPlacement {
    /// On the server-grade host CPU (baseline).
    Host,
    /// Offloaded to the BlueField-3 (the ROS2 design).
    Dpu,
}

/// The deployment's node layout: N clients (host CPU or BlueField-3, one
/// placement each) plus M storage servers behind the shared 100 Gbps
/// switch. This is the single source of cluster shape —
/// `ros2_fabric::Fabric::for_topology` maps it onto canonical node specs,
/// so assemblies never hand-build (or clone) per-node spec literals.
///
/// Node-id convention: client `c` is node `c`; storage server `i` (0-based
/// engine slot) is node `clients.len() + i`. With one client this reduces
/// to the historical layout (client at node 0, storage `i` at `i + 1`), so
/// single-client worlds stay bit-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterTopology {
    /// Where each DAOS client runs, one entry per client node.
    pub clients: Vec<ClientPlacement>,
    /// Number of storage servers (one DAOS engine each).
    pub storage_nodes: usize,
}

impl ClusterTopology {
    /// The historical two-node world: one client, one storage server.
    pub fn single(placement: ClientPlacement) -> Self {
        ClusterTopology {
            clients: vec![placement],
            storage_nodes: 1,
        }
    }

    /// One client of `placement` in front of `storage_nodes` servers —
    /// the shape every pre-incast cluster world uses.
    pub fn one_client(placement: ClientPlacement, storage_nodes: usize) -> Self {
        ClusterTopology {
            clients: vec![placement],
            storage_nodes,
        }
    }

    /// `clients` client nodes of uniform `placement` in front of
    /// `storage_nodes` servers — the incast shape.
    pub fn incast(placement: ClientPlacement, clients: usize, storage_nodes: usize) -> Self {
        assert!(clients > 0, "a topology needs at least one client");
        ClusterTopology {
            clients: vec![placement; clients],
            storage_nodes,
        }
    }

    /// Number of client nodes.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The fabric node index of client `c` (identity, by convention).
    pub fn client_node(&self, c: usize) -> usize {
        assert!(c < self.clients.len(), "client {c} out of range");
        c
    }

    /// Total fabric nodes (clients + storage servers).
    pub fn node_count(&self) -> usize {
        self.clients.len() + self.storage_nodes
    }

    /// The fabric node index of storage server `slot`.
    pub fn storage_node(&self, slot: usize) -> usize {
        assert!(slot < self.storage_nodes, "slot {slot} out of range");
        self.clients.len() + slot
    }
}

/// Transport selection for the data plane (§3.4 protocol choices).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Transport {
    /// `ofi+tcp` / `ucx+tcp`.
    Tcp,
    /// `ucx+rc` / `ucx+dc_x` / `ofi+verbs`.
    Rdma,
}

impl Transport {
    /// Short label used in reports ("tcp" / "rdma").
    pub fn label(self) -> &'static str {
        match self {
            Transport::Tcp => "tcp",
            Transport::Rdma => "rdma",
        }
    }
}

/// The whole §4.1 testbed: client (host or DPU), switch, storage server.
#[derive(Clone, Debug)]
pub struct Testbed {
    /// Client host.
    pub host: HostClientConfig,
    /// The SmartNIC on the client host.
    pub dpu: DpuConfig,
    /// The network between client and storage.
    pub switch: SwitchModel,
    /// The storage server.
    pub storage: StorageServerConfig,
}

impl Testbed {
    /// The paper's testbed with `ssds` drives enabled.
    pub fn paper(ssds: usize) -> Self {
        Testbed {
            host: HostClientConfig::paper(),
            dpu: DpuConfig::bluefield3(),
            switch: SwitchModel::gbps100(),
            storage: StorageServerConfig::paper(ssds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_storage_server_shape() {
        let s = StorageServerConfig::paper(4);
        assert_eq!(s.nvme.len(), 4);
        assert_eq!(s.cpu.cores, 64);
        assert_eq!(s.cpu.class, CoreClass::HostX86);
    }

    #[test]
    #[should_panic(expected = "paper uses 1 or 4")]
    fn storage_server_rejects_zero_ssds() {
        StorageServerConfig::paper(0);
    }

    #[test]
    fn dpu_has_16_arm_cores() {
        let d = DpuConfig::bluefield3();
        assert_eq!(d.cpu.cores, 16);
        assert_eq!(d.cpu.class, CoreClass::DpuArm);
        assert_eq!(d.dram, 30 * (1 << 30));
    }

    #[test]
    fn host_client_is_epyc_7443_class() {
        let h = HostClientConfig::paper();
        assert_eq!(h.cpu.cores, 48);
        assert_eq!(h.cpu.class, CoreClass::HostX86);
    }

    #[test]
    fn testbed_wires_the_whole_lab() {
        let tb = Testbed::paper(1);
        assert_eq!(tb.storage.nvme.len(), 1);
        // DPU NIC is faster than host NIC, but the switch binds both.
        assert!(tb.dpu.nic.line_rate > tb.host.nic.line_rate);
        assert!(tb.switch.capacity < tb.host.nic.line_rate);
    }

    #[test]
    fn single_client_topology_keeps_historical_node_ids() {
        let t = ClusterTopology::one_client(ClientPlacement::Host, 4);
        assert_eq!(t.client_count(), 1);
        assert_eq!(t.client_node(0), 0);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.storage_node(0), 1);
        assert_eq!(t.storage_node(3), 4);
        assert_eq!(
            t,
            ClusterTopology {
                clients: vec![ClientPlacement::Host],
                storage_nodes: 4,
            }
        );
    }

    #[test]
    fn incast_topology_packs_clients_before_storage() {
        let t = ClusterTopology::incast(ClientPlacement::Host, 16, 4);
        assert_eq!(t.client_count(), 16);
        assert_eq!(t.client_node(15), 15);
        assert_eq!(t.storage_node(0), 16);
        assert_eq!(t.node_count(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn incast_topology_rejects_zero_clients() {
        ClusterTopology::incast(ClientPlacement::Host, 0, 1);
    }

    #[test]
    fn transport_labels() {
        assert_eq!(Transport::Tcp.label(), "tcp");
        assert_eq!(Transport::Rdma.label(), "rdma");
    }
}
