//! Network fabric models: NIC ports, the 100 Gbps switch, and wire-protocol
//! efficiency factors.
//!
//! The paper's testbed (§4.1) connects a ConnectX-6 host (200 Gbps), a
//! BlueField-3 (integrated ConnectX-7, 400 Gbps) and the storage server's
//! ConnectX-6 through a **100 Gbps switch**, which the paper itself calls
//! out as the binding constraint for multi-SSD throughput. Wire efficiency
//! differs per protocol: RoCE/InfiniBand framing is leaner than
//! TCP/IP + NVMe-oF/DAOS encapsulation.

use ros2_sim::{SimDuration, SimTime};

/// Gigabits-per-second to bytes-per-second.
pub const fn gbps(g: u64) -> u64 {
    g * 1_000_000_000 / 8
}

/// A network endpoint's port model.
#[derive(Copy, Clone, Debug)]
pub struct NicModel {
    /// Port line rate, bytes/second.
    pub line_rate: u64,
    /// Fixed DMA/doorbell latency added per message by the NIC.
    pub port_latency: SimDuration,
}

impl NicModel {
    /// ConnectX-6 (host and storage server NICs, 200 Gbps per port).
    pub fn connectx6() -> Self {
        NicModel {
            line_rate: gbps(200),
            port_latency: SimDuration::from_nanos(600),
        }
    }
    /// ConnectX-7 integrated in BlueField-3 (400 Gbps).
    pub fn connectx7() -> Self {
        NicModel {
            line_rate: gbps(400),
            port_latency: SimDuration::from_nanos(500),
        }
    }
}

/// The top-of-rack switch between client and storage server.
#[derive(Copy, Clone, Debug)]
pub struct SwitchModel {
    /// Per-direction forwarding capacity, bytes/second.
    pub capacity: u64,
    /// Cut-through forwarding latency.
    pub hop_latency: SimDuration,
}

impl SwitchModel {
    /// The paper's 100 Gbps switch.
    pub fn gbps100() -> Self {
        SwitchModel {
            capacity: gbps(100),
            hop_latency: SimDuration::from_nanos(800),
        }
    }
}

/// Per-protocol wire overhead model: how payload bytes expand into on-wire
/// bytes, plus fixed per-message framing.
#[derive(Copy, Clone, Debug)]
pub struct WireProtocol {
    /// Numerator/denominator of payload efficiency (e.g. 94/100 for TCP).
    pub efficiency_num: u64,
    /// See `efficiency_num`.
    pub efficiency_den: u64,
    /// Fixed framing bytes per message (headers, CRCs, acks amortized).
    pub per_msg_overhead: u64,
    /// Maximum segment the fabric puts on the wire at once; larger payloads
    /// are segmented so concurrent flows interleave at this granularity.
    pub segment: u64,
}

impl WireProtocol {
    /// TCP/IP with jumbo frames carrying NVMe-oF or DAOS RPC payloads.
    pub fn tcp() -> Self {
        WireProtocol {
            efficiency_num: 100,
            efficiency_den: 113, // ≈0.885 payload efficiency end-to-end
            per_msg_overhead: 160,
            segment: 64 * 1024,
        }
    }

    /// RoCEv2 / InfiniBand RC with 4 KiB MTU.
    pub fn rdma() -> Self {
        WireProtocol {
            efficiency_num: 100,
            efficiency_den: 103, // ≈0.97
            per_msg_overhead: 64,
            segment: 128 * 1024,
        }
    }

    /// On-wire bytes for a `payload`-byte message.
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        payload * self.efficiency_den / self.efficiency_num + self.per_msg_overhead
    }

    /// The achievable payload throughput through a pipe of `raw` B/s.
    pub fn effective_bw(&self, raw: u64) -> u64 {
        raw * self.efficiency_num / self.efficiency_den
    }
}

/// End-to-end path latency budget between two endpoints through the switch
/// (propagation + NIC port latencies), excluding serialization.
pub fn path_latency(src: NicModel, switch: SwitchModel, dst: NicModel) -> SimDuration {
    src.port_latency + switch.hop_latency + dst.port_latency
}

/// Convenience: the instant a message entering at `now` finishes traversing
/// a fixed-latency path.
pub fn after_path(now: SimTime, lat: SimDuration) -> SimTime {
    now + lat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion() {
        assert_eq!(gbps(100), 12_500_000_000);
        assert_eq!(gbps(8), 1_000_000_000);
    }

    #[test]
    fn switch_is_the_bottleneck() {
        // §4.1: 100 Gbps switch constrains multi-SSD throughput even though
        // both NICs are faster.
        let sw = SwitchModel::gbps100();
        assert!(sw.capacity < NicModel::connectx6().line_rate);
        assert!(sw.capacity < NicModel::connectx7().line_rate);
    }

    #[test]
    fn rdma_wire_efficiency_beats_tcp() {
        let tcp = WireProtocol::tcp();
        let rdma = WireProtocol::rdma();
        assert!(rdma.wire_bytes(1 << 20) < tcp.wire_bytes(1 << 20));
        let raw = gbps(100);
        let tcp_eff = tcp.effective_bw(raw) as f64 / (1u64 << 30) as f64;
        let rdma_eff = rdma.effective_bw(raw) as f64 / (1u64 << 30) as f64;
        // TCP lands near 10.3 GiB/s, RDMA near 11.3 GiB/s payload ceiling —
        // the Fig. 5a/5b four-SSD plateaus.
        assert!((10.0..10.6).contains(&tcp_eff), "tcp {tcp_eff}");
        assert!((11.0..11.6).contains(&rdma_eff), "rdma {rdma_eff}");
    }

    #[test]
    fn wire_bytes_include_fixed_overhead() {
        let p = WireProtocol::rdma();
        assert_eq!(p.wire_bytes(0), p.per_msg_overhead);
        assert!(p.wire_bytes(4096) > 4096);
    }

    #[test]
    fn path_latency_sums_hops() {
        let lat = path_latency(
            NicModel::connectx6(),
            SwitchModel::gbps100(),
            NicModel::connectx6(),
        );
        assert_eq!(lat, SimDuration::from_nanos(600 + 800 + 600));
        assert_eq!(after_path(SimTime::ZERO, lat), SimTime::from_nanos(2000));
    }
}
