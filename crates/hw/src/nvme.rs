//! NVMe device timing model.
//!
//! Calibrated to the enterprise drives in the paper's storage server (§4.1:
//! four NVMe SSDs, 6.4 TB total, behind a 100 Gbps switch). The constants are
//! chosen so that the *measured* figure-3 baselines reproduce:
//!
//! * large-block reads plateau ≈5.4–5.6 GiB/s per device, writes ≈2.7 GiB/s;
//! * 4 KiB random-read IOPS reach ≈1.1 M per device at full concurrency
//!   (never observed directly in the paper because the host software path
//!   caps at ≈600 K first — see [`crate::cpu::HostPathModel`]);
//! * 4 KiB latency sits near 85 µs read / 80 µs write at low queue depth.
//!
//! The mechanical model: a device has `channels` independent internal
//! channels (flash-die groups). An operation *occupies* a channel for its
//! transfer time plus a small per-command overhead — occupancy is what caps
//! bandwidth and IOPS — and additionally experiences a non-occupying access
//! latency (array read / program time) before completing.

use ros2_sim::SimDuration;

/// Size of one logical block (LBA) in bytes. All device addressing is in
/// 4 KiB blocks, matching the paper's 4 KiB small-I/O workloads.
pub const LBA_SIZE: u64 = 4096;

/// Timing model for one NVMe SSD.
#[derive(Clone, Debug)]
pub struct NvmeModel {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Device capacity in bytes (paper: 4 drives totalling 6.4 TB).
    pub capacity: u64,
    /// Aggregate sequential/large-block read bandwidth ceiling (B/s).
    pub read_bw: u64,
    /// Aggregate large-block write bandwidth ceiling (B/s).
    pub write_bw: u64,
    /// Number of independent internal channels.
    pub channels: usize,
    /// Non-occupying flash access latency for random reads.
    pub read_access: SimDuration,
    /// Non-occupying program latency for random writes.
    pub write_access: SimDuration,
    /// Access latency for *sequential* reads (controller read-ahead hits).
    /// Drives the Fig. 3 observation that at 4 KiB "access pattern plus
    /// submission concurrency determine IOPS".
    pub seq_read_access: SimDuration,
    /// Program latency for *sequential* writes (write-combining).
    pub seq_write_access: SimDuration,
    /// Per-command channel occupancy overhead for reads.
    pub read_cmd_overhead: SimDuration,
    /// Per-command channel occupancy overhead for writes.
    pub write_cmd_overhead: SimDuration,
    /// Maximum outstanding commands the device accepts.
    pub max_qd: usize,
}

impl NvmeModel {
    /// The default drive: a PCIe 4.0 enterprise SSD of the class in the
    /// paper's testbed (1.6 TB, ~5.8 GB/s read, ~2.7 GiB/s write).
    pub fn enterprise_1600() -> Self {
        NvmeModel {
            name: "ent-nvme-1.6t",
            capacity: 1600 * 1000 * 1000 * 1000,
            // 5.8 GiB/s raw; the io_uring host path shaves this to the
            // 5.4-5.6 GiB/s plateau of Fig. 3a.
            read_bw: (5.8 * (1u64 << 30) as f64) as u64,
            write_bw: (2.7 * (1u64 << 30) as f64) as u64,
            channels: 8,
            read_access: SimDuration::from_micros(78),
            write_access: SimDuration::from_micros(68),
            seq_read_access: SimDuration::from_micros(45),
            seq_write_access: SimDuration::from_micros(40),
            // Occupancy for a 4 KiB read: 4096 B at (read_bw/8) ≈ 5.3 us
            // transfer + 1.9 us overhead ≈ 7.2 us -> ≈1.11 M IOPS ceiling.
            read_cmd_overhead: SimDuration::from_nanos(1900),
            write_cmd_overhead: SimDuration::from_nanos(1000),
            max_qd: 1024,
        }
    }

    /// Per-channel bandwidth for the given direction (B/s).
    pub fn channel_bw(&self, write: bool) -> u64 {
        let total = if write { self.write_bw } else { self.read_bw };
        total / self.channels as u64
    }

    /// Channel occupancy of one command of `bytes` (transfer + overhead).
    pub fn occupancy(&self, bytes: u64, write: bool) -> SimDuration {
        let transfer = SimDuration::for_bytes(bytes, self.channel_bw(write));
        let overhead = if write {
            self.write_cmd_overhead
        } else {
            self.read_cmd_overhead
        };
        transfer + overhead
    }

    /// Non-occupying access latency for the given direction.
    pub fn access(&self, write: bool) -> SimDuration {
        if write {
            self.write_access
        } else {
            self.read_access
        }
    }

    /// Access latency honouring a sequential-access hint.
    pub fn access_hinted(&self, write: bool, sequential: bool) -> SimDuration {
        match (write, sequential) {
            (false, false) => self.read_access,
            (false, true) => self.seq_read_access,
            (true, false) => self.write_access,
            (true, true) => self.seq_write_access,
        }
    }

    /// The theoretical 4 KiB IOPS ceiling implied by the occupancy model.
    pub fn iops_ceiling_4k(&self, write: bool) -> f64 {
        let occ = self.occupancy(LBA_SIZE, write);
        self.channels as f64 / occ.as_secs_f64()
    }

    /// Number of LBAs on the device.
    pub fn lba_count(&self) -> u64 {
        self.capacity / LBA_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceilings_match_paper_targets() {
        let m = NvmeModel::enterprise_1600();
        // Read IOPS ceiling around 1.0-1.2M so the ~600K host-path cap binds
        // first, as the paper's Fig. 3b/3d "software limit" finding requires.
        let r = m.iops_ceiling_4k(false);
        assert!((1.0e6..1.3e6).contains(&r), "read 4k ceiling {r}");
        // Write ceiling must exceed ~600K too (writes also plateau there).
        let w = m.iops_ceiling_4k(true);
        assert!((6.0e5..9.0e5).contains(&w), "write 4k ceiling {w}");
    }

    #[test]
    fn large_block_occupancy_saturates_at_channel_count() {
        let m = NvmeModel::enterprise_1600();
        // channels * (1 MiB / occupancy) == aggregate BW (within overhead).
        let occ = m.occupancy(1 << 20, false);
        let agg = m.channels as f64 * (1 << 20) as f64 / occ.as_secs_f64();
        let target = m.read_bw as f64;
        assert!(
            (agg - target).abs() / target < 0.01,
            "agg {agg} vs {target}"
        );
    }

    #[test]
    fn small_read_latency_near_85us() {
        let m = NvmeModel::enterprise_1600();
        let lat = m.access(false) + m.occupancy(LBA_SIZE, false);
        let us = lat.as_micros();
        assert!((80..92).contains(&us), "4k read latency {us}us");
    }

    #[test]
    fn write_slower_than_read_for_bandwidth() {
        let m = NvmeModel::enterprise_1600();
        assert!(m.write_bw < m.read_bw);
        assert!(m.channel_bw(true) < m.channel_bw(false));
    }

    #[test]
    fn lba_geometry() {
        let m = NvmeModel::enterprise_1600();
        assert_eq!(m.lba_count() * LBA_SIZE, m.capacity);
    }
}
