//! NVIDIA data-center GPU generations (paper Table 1) and the §2.1 LLM
//! ingest-rate model `B_node ≈ G · r · s`.
//!
//! Table 1 motivates the whole system: HBM bandwidth grew ~11× from P100 to
//! B200, so storage must deliver multi-GiB/s per node with heavy small-I/O
//! pressure. The `table1_gpu` bench binary reprints the table and evaluates
//! the ingest model for representative training configurations.

/// One row of Table 1 (representative server configurations).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Microarchitecture.
    pub architecture: &'static str,
    /// On-package memory size, GB.
    pub memory_gb: u32,
    /// Memory technology.
    pub memory_kind: &'static str,
    /// Memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// NVLink generation.
    pub nvlink_gen: u8,
    /// Per-GPU NVLink bandwidth, GB/s.
    pub nvlink_gbs: f64,
    /// FP16 tensor throughput, TFLOPS.
    pub fp16_tflops: f64,
    /// FP8 tensor throughput, TFLOPS (`None` before Hopper).
    pub fp8_tflops: Option<f64>,
    /// FP4 tensor throughput, TFLOPS (`None` before Blackwell).
    pub fp4_tflops: Option<f64>,
}

/// The six generations of Table 1, P100 through B200.
pub const TABLE1: [GpuSpec; 6] = [
    GpuSpec {
        name: "P100",
        architecture: "Pascal",
        memory_gb: 16,
        memory_kind: "HBM2",
        mem_bw_gbs: 732.0,
        nvlink_gen: 1,
        nvlink_gbs: 80.0,
        fp16_tflops: 21.2,
        fp8_tflops: None,
        fp4_tflops: None,
    },
    GpuSpec {
        name: "V100",
        architecture: "Volta",
        memory_gb: 32,
        memory_kind: "HBM2",
        mem_bw_gbs: 1134.0,
        nvlink_gen: 2,
        nvlink_gbs: 300.0,
        fp16_tflops: 130.0, // Tensor-core FP16/FP32-accumulate figure
        fp8_tflops: None,
        fp4_tflops: None,
    },
    GpuSpec {
        name: "A100",
        architecture: "Ampere",
        memory_gb: 80,
        memory_kind: "HBM2e",
        mem_bw_gbs: 2000.0,
        nvlink_gen: 3,
        nvlink_gbs: 600.0,
        fp16_tflops: 624.0,
        fp8_tflops: None,
        fp4_tflops: None,
    },
    GpuSpec {
        name: "H100",
        architecture: "Hopper",
        memory_gb: 80,
        memory_kind: "HBM3",
        mem_bw_gbs: 3350.0,
        nvlink_gen: 4,
        nvlink_gbs: 900.0,
        fp16_tflops: 2000.0,
        fp8_tflops: Some(4000.0),
        fp4_tflops: None,
    },
    GpuSpec {
        name: "H200",
        architecture: "Hopper",
        memory_gb: 141,
        memory_kind: "HBM3e",
        mem_bw_gbs: 4800.0,
        nvlink_gen: 4,
        nvlink_gbs: 900.0,
        fp16_tflops: 2000.0,
        fp8_tflops: Some(4000.0),
        fp4_tflops: None,
    },
    GpuSpec {
        name: "B200",
        architecture: "Blackwell",
        memory_gb: 186,
        memory_kind: "HBM3e",
        mem_bw_gbs: 8000.0,
        nvlink_gen: 5,
        nvlink_gbs: 1800.0,
        fp16_tflops: 5000.0,
        fp8_tflops: Some(10000.0),
        fp4_tflops: Some(20000.0),
    },
];

/// Looks up a generation by name (case-insensitive).
pub fn gpu_by_name(name: &str) -> Option<&'static GpuSpec> {
    TABLE1.iter().find(|g| g.name.eq_ignore_ascii_case(name))
}

/// The §2.1 ingest model: sustained bytes/second a node's storage path must
/// deliver.
///
/// `B_node ≈ G · r · s` with `G` GPUs per node, `r` samples (or tokens) per
/// second per GPU, and `s` average bytes fetched per sample after
/// compression.
#[derive(Copy, Clone, Debug)]
pub struct IngestModel {
    /// GPUs per node (`G`).
    pub gpus_per_node: u32,
    /// Per-GPU sample rate, samples/s (`r`).
    pub samples_per_gpu_per_sec: f64,
    /// Average bytes fetched per sample after compression (`s`).
    pub bytes_per_sample: u64,
}

impl IngestModel {
    /// Required sustained ingest rate for the node, bytes/second.
    pub fn required_bytes_per_sec(&self) -> f64 {
        self.gpus_per_node as f64 * self.samples_per_gpu_per_sec * self.bytes_per_sample as f64
    }

    /// Required rate in GiB/s.
    pub fn required_gib_per_sec(&self) -> f64 {
        self.required_bytes_per_sec() / (1u64 << 30) as f64
    }

    /// Small-I/O pressure estimate: random read operations per second if
    /// each sample is one object fetch (shuffled dataloader).
    pub fn required_iops(&self) -> f64 {
        self.gpus_per_node as f64 * self.samples_per_gpu_per_sec
    }

    /// A conservative 8×GPU LLM pre-training node: 2 k samples/s/GPU of
    /// ~256 KiB multimodal-tokenized records.
    pub fn llm_pretraining_node() -> Self {
        IngestModel {
            gpus_per_node: 8,
            samples_per_gpu_per_sec: 2_000.0,
            bytes_per_sample: 256 * 1024,
        }
    }
}

/// The four LLM lifecycle phases of Fig. 1 and their storage requirements.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LlmPhase {
    /// Ingest & filter: high throughput, large capacity.
    DataPreparation,
    /// Collaboration workspace: POSIX-compatible, sharable, reliable.
    ModelDevelopment,
    /// Dataset & checkpoints: high throughput, low latency.
    ModelTraining,
    /// Deployment: high concurrency, high throughput.
    ModelInference,
}

impl LlmPhase {
    /// All phases in pipeline order.
    pub const ALL: [LlmPhase; 4] = [
        LlmPhase::DataPreparation,
        LlmPhase::ModelDevelopment,
        LlmPhase::ModelTraining,
        LlmPhase::ModelInference,
    ];

    /// The headline storage requirements the paper lists for this phase.
    pub fn requirements(self) -> &'static [&'static str] {
        match self {
            LlmPhase::DataPreparation => &["high throughput", "large capacity"],
            LlmPhase::ModelDevelopment => &["POSIX compatible", "sharable", "high reliability"],
            LlmPhase::ModelTraining => &["high throughput", "low latency"],
            LlmPhase::ModelInference => &["high concurrency", "high throughput"],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_generations_in_order() {
        let names: Vec<_> = TABLE1.iter().map(|g| g.name).collect();
        assert_eq!(names, ["P100", "V100", "A100", "H100", "H200", "B200"]);
    }

    #[test]
    fn memory_bandwidth_grows_monotonically() {
        for pair in TABLE1.windows(2) {
            assert!(pair[1].mem_bw_gbs > pair[0].mem_bw_gbs);
            assert!(pair[1].nvlink_gen >= pair[0].nvlink_gen);
        }
        // The paper's headline: ~11x from P100 to B200.
        let ratio = TABLE1[5].mem_bw_gbs / TABLE1[0].mem_bw_gbs;
        assert!((10.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fp8_fp4_appear_at_right_generations() {
        assert!(gpu_by_name("A100").unwrap().fp8_tflops.is_none());
        assert!(gpu_by_name("H100").unwrap().fp8_tflops.is_some());
        assert!(gpu_by_name("H200").unwrap().fp4_tflops.is_none());
        assert!(gpu_by_name("B200").unwrap().fp4_tflops.is_some());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(gpu_by_name("b200").unwrap().name, "B200");
        assert!(gpu_by_name("GTX1080").is_none());
    }

    #[test]
    fn ingest_model_yields_multi_gib_per_node() {
        // "Even conservative choices yield multi-GiB/s per node" (§2.1).
        let m = IngestModel::llm_pretraining_node();
        assert!(m.required_gib_per_sec() > 2.0);
        assert!(m.required_iops() >= 16_000.0);
    }

    #[test]
    fn ingest_model_is_linear_in_g_r_s() {
        let base = IngestModel {
            gpus_per_node: 1,
            samples_per_gpu_per_sec: 100.0,
            bytes_per_sample: 1000,
        };
        let double = IngestModel {
            gpus_per_node: 2,
            ..base
        };
        assert_eq!(
            double.required_bytes_per_sec(),
            2.0 * base.required_bytes_per_sec()
        );
    }

    #[test]
    fn phases_cover_figure_1() {
        assert_eq!(LlmPhase::ALL.len(), 4);
        assert!(LlmPhase::ModelDevelopment
            .requirements()
            .contains(&"POSIX compatible"));
    }
}
