//! # ros2-hw — calibrated hardware models for the ROS2 testbed
//!
//! Every physical component of the paper's §4.1 platform, as an explicit,
//! documented timing model:
//!
//! * [`nvme`] — enterprise NVMe SSD (bandwidth ceilings, channel occupancy,
//!   access latencies);
//! * [`cpu`] — host x86 vs. BlueField-3 ARM cores, per-transport CPU costs,
//!   the kernel block-layer stage, the DPU TCP receive-path penalty;
//! * [`link`] — ConnectX NICs, the 100 Gbps switch, wire-protocol
//!   efficiencies;
//! * [`gpu`] — Table 1's GPU generations and the §2.1 ingest model;
//! * [`platform`] — the assembled testbed configurations.
//!
//! Calibration constants carry doc comments explaining which figure shape
//! they anchor; `DESIGN.md` §5 summarizes the rationale. Higher layers never
//! hardcode timing — they ask these models.

#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;
pub mod link;
pub mod nvme;
pub mod platform;

pub use cpu::{
    checksum_cost, inline_crypto_cost, per_byte, CoreClass, DpuTcpRxModel, HostPathModel,
    TransportCost,
};
pub use gpu::{gpu_by_name, GpuSpec, IngestModel, LlmPhase, TABLE1};
pub use link::{gbps, path_latency, NicModel, SwitchModel, WireProtocol};
pub use nvme::{NvmeModel, LBA_SIZE};
pub use platform::{
    ClientPlacement, ClusterTopology, CpuComplement, DpuConfig, HostClientConfig,
    StorageServerConfig, Testbed, Transport,
};
