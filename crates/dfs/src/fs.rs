//! DFS — the POSIX-compatible namespace over DAOS objects (libdfs
//! analogue).
//!
//! Mapping (mirroring the real DFS layout, §3.3 "DFS mapping"):
//!
//! * the **superblock** is a single-value record on a reserved S1 object;
//! * a **directory** is an S1 object whose entries are `dkey = name`,
//!   `akey = "entry"` single values encoding `(ino, kind, mode, size,
//!   chunk_size)`;
//! * a **file**'s data lives on an `Sx` (striped) object keyed by
//!   `dkey = chunk index`, `akey = "data"` array values — so one file's
//!   chunks spread across every target, which is what lets a single FIO
//!   file drive all four SSDs in Fig. 5.
//!
//! Every operation takes a [`DfsSession`] (fabric + engine + client) and
//! returns virtual-time completion alongside its functional result.

use bytes::Bytes;
use ros2_ctl::{WireReader, WireWriter};
use ros2_daos::{
    AKey, ClientOp, DKey, DaosError, EngineCluster, Epoch, ObjClass, ObjectClient, ObjectId,
    ValueKind,
};
use ros2_fabric::Fabric;
use ros2_sim::SimTime;

/// The reserved object id of the superblock / root directory.
const ROOT_INO: u64 = 1;
/// The akey under which directory entries live.
fn entry_akey() -> AKey {
    AKey::from_str("entry")
}
/// The akey under which file chunk data lives.
fn data_akey() -> AKey {
    AKey::from_str("data")
}

/// What a directory entry describes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// A stat result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number (object id low word).
    pub ino: u64,
    /// File or directory.
    pub kind: FileKind,
    /// POSIX mode bits.
    pub mode: u32,
    /// Size in bytes (files).
    pub size: u64,
}

/// An open handle.
#[derive(Clone, Debug)]
pub struct DfsObj {
    /// The object backing this node.
    pub oid: ObjectId,
    /// The parent directory's object.
    pub parent: ObjectId,
    /// Name within the parent.
    pub name: String,
    /// Kind.
    pub kind: FileKind,
    /// Current size (files; updated on extending writes).
    pub size: u64,
    /// POSIX mode bits.
    pub mode: u32,
}

/// DFS-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfsError {
    /// Component of the path does not exist.
    NotFound,
    /// Entry already exists.
    Exists,
    /// Operation on the wrong kind (read a dir, readdir a file).
    NotAFile,
    /// See [`DfsError::NotAFile`].
    NotADir,
    /// Directory not empty on unlink.
    NotEmpty,
    /// Underlying DAOS failure.
    Daos(DaosError),
}

impl From<DaosError> for DfsError {
    fn from(e: DaosError) -> Self {
        match e {
            DaosError::NotFound => DfsError::NotFound,
            other => DfsError::Daos(other),
        }
    }
}

/// The mutable borrow bundle every DFS call needs.
pub struct DfsSession<'a> {
    /// The data-plane fabric.
    pub fabric: &'a mut Fabric,
    /// The storage cluster (one engine per storage node; the degenerate
    /// single-engine cluster for the historical two-node worlds).
    pub cluster: &'a mut EngineCluster,
    /// The object client — the in-process [`ros2_daos::DaosClient`] (host
    /// placement) or the DPU-offloaded client (SmartNIC placement). It
    /// routes every op by the cluster's pool map.
    pub client: &'a mut dyn ObjectClient,
}

#[derive(Clone, Debug)]
struct DirEntry {
    ino: u64,
    kind: FileKind,
    mode: u32,
    size: u64,
}

impl DirEntry {
    fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.u64(self.ino)
            .u8(match self.kind {
                FileKind::File => 0,
                FileKind::Dir => 1,
            })
            .u32(self.mode)
            .u64(self.size);
        w.finish()
    }

    fn decode(buf: Bytes) -> Option<DirEntry> {
        let mut r = WireReader::new(buf);
        Some(DirEntry {
            ino: r.u64().ok()?,
            kind: if r.u8().ok()? == 1 {
                FileKind::Dir
            } else {
                FileKind::File
            },
            mode: r.u32().ok()?,
            size: r.u64().ok()?,
        })
    }
}

/// A mounted DFS namespace.
pub struct Dfs {
    chunk_size: u64,
    next_ino: u64,
    root: ObjectId,
    mounted: bool,
    /// When set, data-path ops (file reads/writes) go through the client's
    /// submission/completion ring ([`ObjectClient::execute_pipelined`])
    /// instead of the serial `update`/`fetch` and barriered
    /// `execute_batch` paths. Functionally identical — epochs are still
    /// allocated in submission order — but the client books only the
    /// submission share of its per-op CPU on the job core, so consecutive
    /// calls overlap the completion share. Off by default: classic worlds
    /// keep today's bit-exact cost accounting.
    data_pipeline: bool,
    /// Namespace (metadata) operations performed.
    pub meta_ops: u64,
    /// Data operations performed.
    pub data_ops: u64,
}

impl Dfs {
    /// Formats and mounts a fresh namespace with the given chunk size.
    /// Returns the mount completion time.
    pub fn format(
        s: &mut DfsSession<'_>,
        now: SimTime,
        chunk_size: u64,
    ) -> Result<(Dfs, SimTime), DfsError> {
        let root = ObjectId::new(ObjClass::S1, ROOT_INO);
        // Superblock: magic + chunk size, stored as a single value on the
        // root object under a reserved dkey.
        let mut w = WireWriter::new();
        w.u64(0x5244_4653_0001_u64).u64(chunk_size); // "RDFS" magic v1
        let done = s.client.update(
            s.fabric,
            s.cluster,
            now,
            0,
            root,
            DKey::from_str("."),
            AKey::from_str("superblock"),
            ValueKind::Single,
            w.finish(),
        )?;
        Ok((
            Dfs {
                chunk_size,
                next_ino: ROOT_INO + 1,
                root,
                mounted: true,
                data_pipeline: false,
                meta_ops: 1,
                data_ops: 0,
            },
            done,
        ))
    }

    /// Mounts an existing namespace (reads the superblock).
    pub fn mount(s: &mut DfsSession<'_>, now: SimTime) -> Result<(Dfs, SimTime), DfsError> {
        let root = ObjectId::new(ObjClass::S1, ROOT_INO);
        let (raw, done) = s.client.fetch(
            s.fabric,
            s.cluster,
            now,
            0,
            root,
            DKey::from_str("."),
            AKey::from_str("superblock"),
            ValueKind::Single,
            Epoch::LATEST,
            16,
        )?;
        let mut r = WireReader::new(raw);
        let magic = r.u64().map_err(|_| DfsError::NotFound)?;
        if magic != 0x5244_4653_0001_u64 {
            return Err(DfsError::NotFound);
        }
        let chunk_size = r.u64().map_err(|_| DfsError::NotFound)?;
        Ok((
            Dfs {
                chunk_size,
                // Mount can't know the allocator watermark; continue from a
                // high bank (each mount epoch gets its own ino range).
                next_ino: 1 << 32,
                root,
                mounted: true,
                data_pipeline: false,
                meta_ops: 1,
                data_ops: 0,
            },
            done,
        ))
    }

    /// The root directory handle.
    pub fn root(&self) -> DfsObj {
        DfsObj {
            oid: self.root,
            parent: self.root,
            name: "/".into(),
            kind: FileKind::Dir,
            size: 0,
            mode: 0o755,
        }
    }

    /// The namespace chunk size.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Whether the namespace is mounted.
    pub fn is_mounted(&self) -> bool {
        self.mounted
    }

    /// Routes data-path I/O through the client's submission/completion
    /// ring (see the `data_pipeline` field). Metadata ops stay serial —
    /// they are ordering-sensitive and a rounding error of the data path.
    pub fn set_data_pipeline(&mut self, on: bool) {
        self.data_pipeline = on;
    }

    /// Whether data-path ops ride the pipelined ring.
    pub fn data_pipeline(&self) -> bool {
        self.data_pipeline
    }

    fn read_entry(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        job: usize,
        dir: ObjectId,
        name: &str,
    ) -> Result<(DirEntry, SimTime), DfsError> {
        self.meta_ops += 1;
        let (raw, at) = s.client.fetch(
            s.fabric,
            s.cluster,
            now,
            job,
            dir,
            DKey::from_str(name),
            entry_akey(),
            ValueKind::Single,
            Epoch::LATEST,
            32,
        )?;
        let entry = DirEntry::decode(raw).ok_or(DfsError::NotFound)?;
        Ok((entry, at))
    }

    fn write_entry(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        job: usize,
        dir: ObjectId,
        name: &str,
        entry: &DirEntry,
    ) -> Result<SimTime, DfsError> {
        self.meta_ops += 1;
        Ok(s.client.update(
            s.fabric,
            s.cluster,
            now,
            job,
            dir,
            DKey::from_str(name),
            entry_akey(),
            ValueKind::Single,
            entry.encode(),
        )?)
    }

    /// Creates a directory under `parent`.
    pub fn mkdir(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        parent: &DfsObj,
        name: &str,
        mode: u32,
    ) -> Result<(DfsObj, SimTime), DfsError> {
        if parent.kind != FileKind::Dir {
            return Err(DfsError::NotADir);
        }
        if self.read_entry(s, now, 0, parent.oid, name).is_ok() {
            return Err(DfsError::Exists);
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        let entry = DirEntry {
            ino,
            kind: FileKind::Dir,
            mode,
            size: 0,
        };
        let at = self.write_entry(s, now, 0, parent.oid, name, &entry)?;
        Ok((
            DfsObj {
                oid: ObjectId::new(ObjClass::S1, ino),
                parent: parent.oid,
                name: name.into(),
                kind: FileKind::Dir,
                size: 0,
                mode,
            },
            at,
        ))
    }

    /// Creates (exclusively) a regular file under `parent`.
    pub fn create(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        parent: &DfsObj,
        name: &str,
        mode: u32,
    ) -> Result<(DfsObj, SimTime), DfsError> {
        if parent.kind != FileKind::Dir {
            return Err(DfsError::NotADir);
        }
        if self.read_entry(s, now, 0, parent.oid, name).is_ok() {
            return Err(DfsError::Exists);
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        let entry = DirEntry {
            ino,
            kind: FileKind::File,
            mode,
            size: 0,
        };
        let at = self.write_entry(s, now, 0, parent.oid, name, &entry)?;
        Ok((
            DfsObj {
                oid: ObjectId::new(ObjClass::Sx, ino),
                parent: parent.oid,
                name: name.into(),
                kind: FileKind::File,
                size: 0,
                mode,
            },
            at,
        ))
    }

    /// Opens an existing entry under `parent`.
    pub fn open(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        parent: &DfsObj,
        name: &str,
    ) -> Result<(DfsObj, SimTime), DfsError> {
        let (entry, at) = self.read_entry(s, now, 0, parent.oid, name)?;
        let class = match entry.kind {
            FileKind::Dir => ObjClass::S1,
            FileKind::File => ObjClass::Sx,
        };
        Ok((
            DfsObj {
                oid: ObjectId::new(class, entry.ino),
                parent: parent.oid,
                name: name.into(),
                kind: entry.kind,
                size: entry.size,
                mode: entry.mode,
            },
            at,
        ))
    }

    /// Resolves an absolute `/a/b/c` path from the root.
    pub fn lookup(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        path: &str,
    ) -> Result<(DfsObj, SimTime), DfsError> {
        let mut cur = self.root();
        let mut t = now;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let (next, at) = self.open(s, t, &cur, comp)?;
            cur = next;
            t = at;
        }
        Ok((cur, t))
    }

    /// Writes `data` at `offset` in an open file, chunking across the
    /// striped data object. Returns the completion time.
    pub fn write(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        job: usize,
        file: &mut DfsObj,
        offset: u64,
        data: Bytes,
    ) -> Result<SimTime, DfsError> {
        if file.kind != FileKind::File {
            return Err(DfsError::NotAFile);
        }
        self.data_ops += 1;
        let mut t_done = now;
        let mut pos = 0u64;
        let len = data.len() as u64;
        let single_chunk =
            len > 0 && offset / self.chunk_size == (offset + len - 1) / self.chunk_size;
        if len == 0 {
            // Nothing to transfer: no RPC, no epoch, no extent record (the
            // size update below still runs, as it always has).
        } else if single_chunk && !self.data_pipeline {
            // The common case (FIO block sizes never exceed the chunk):
            // one update, no batch bookkeeping.
            let at = s.client.update(
                s.fabric,
                s.cluster,
                now,
                job,
                file.oid,
                DKey::from_u64(offset / self.chunk_size),
                data_akey(),
                ValueKind::Array {
                    offset: offset % self.chunk_size,
                },
                data.clone(),
            )?;
            t_done = t_done.max(at);
        } else {
            // Striped write: one fan-out across the chunks' shards instead
            // of a serial round-trip per chunk. Pipelined mode submits the
            // whole stripe set to the op ring at depth = stripes — phases
            // overlap as resources free up, no barrier between stages.
            let mut ops = Vec::new();
            while pos < len {
                let abs = offset + pos;
                let chunk = abs / self.chunk_size;
                let in_chunk = abs % self.chunk_size;
                let take = (self.chunk_size - in_chunk).min(len - pos);
                ops.push(ClientOp::Update {
                    oid: file.oid,
                    dkey: DKey::from_u64(chunk),
                    akey: data_akey(),
                    kind: ValueKind::Array { offset: in_chunk },
                    data: data.slice(pos as usize..(pos + take) as usize),
                });
                pos += take;
            }
            let results = if self.data_pipeline {
                s.client
                    .execute_pipelined(s.fabric, s.cluster, now, job, ops)
            } else {
                s.client.execute_batch(s.fabric, s.cluster, now, job, ops)
            };
            for r in results {
                t_done = t_done.max(r.into_update()?);
            }
        }
        // Extending writes persist the new size in the parent entry.
        if offset + len > file.size {
            file.size = offset + len;
            let entry = DirEntry {
                ino: file.oid.lo,
                kind: file.kind,
                mode: file.mode,
                size: file.size,
            };
            let name = file.name.clone();
            let at = self.write_entry(s, t_done, job, file.parent, &name, &entry)?;
            t_done = t_done.max(at);
        }
        Ok(t_done)
    }

    /// Reads `len` bytes at `offset` from an open file. Short reads at EOF
    /// return the available prefix.
    pub fn read(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        job: usize,
        file: &DfsObj,
        offset: u64,
        len: u64,
    ) -> Result<(Bytes, SimTime), DfsError> {
        if file.kind != FileKind::File {
            return Err(DfsError::NotAFile);
        }
        self.data_ops += 1;
        let len = len.min(file.size.saturating_sub(offset));
        if len == 0 {
            return Ok((Bytes::new(), now));
        }
        // Zero-copy fast path: a read confined to one chunk is a single
        // fetch whose payload can be handed back without reassembly (the
        // common case — FIO block sizes never exceed the 1 MiB chunk).
        if offset / self.chunk_size == (offset + len - 1) / self.chunk_size {
            let chunk = offset / self.chunk_size;
            let in_chunk = offset % self.chunk_size;
            // Pipelined mode still takes the zero-copy single-fetch path —
            // the ring returns the engine's payload without reassembly.
            if self.data_pipeline {
                let op = ClientOp::Fetch {
                    oid: file.oid,
                    dkey: DKey::from_u64(chunk),
                    akey: data_akey(),
                    kind: ValueKind::Array { offset: in_chunk },
                    epoch: Epoch::LATEST,
                    len,
                };
                let mut results =
                    s.client
                        .execute_pipelined(s.fabric, s.cluster, now, job, vec![op]);
                let (piece, at) = results.remove(0).into_fetch()?;
                return Ok((piece, at));
            }
            let (piece, at) = s.client.fetch(
                s.fabric,
                s.cluster,
                now,
                job,
                file.oid,
                DKey::from_u64(chunk),
                data_akey(),
                ValueKind::Array { offset: in_chunk },
                Epoch::LATEST,
                len,
            )?;
            return Ok((piece, at));
        }
        // Striped read: one batched fan-out across the chunks' shards,
        // stitched back in offset order.
        let mut ops = Vec::new();
        let mut pos = 0u64;
        while pos < len {
            let abs = offset + pos;
            let chunk = abs / self.chunk_size;
            let in_chunk = abs % self.chunk_size;
            let take = (self.chunk_size - in_chunk).min(len - pos);
            ops.push(ClientOp::Fetch {
                oid: file.oid,
                dkey: DKey::from_u64(chunk),
                akey: data_akey(),
                kind: ValueKind::Array { offset: in_chunk },
                epoch: Epoch::LATEST,
                len: take,
            });
            pos += take;
        }
        let mut out = bytes::BytesMut::with_capacity(len as usize);
        let mut t_done = now;
        let results = if self.data_pipeline {
            s.client
                .execute_pipelined(s.fabric, s.cluster, now, job, ops)
        } else {
            s.client.execute_batch(s.fabric, s.cluster, now, job, ops)
        };
        for r in results {
            let (piece, at) = r.into_fetch()?;
            out.extend_from_slice(&piece);
            t_done = t_done.max(at);
        }
        Ok((out.freeze(), t_done))
    }

    /// Lists the names in a directory.
    pub fn readdir(
        &mut self,
        s: &mut DfsSession<'_>,
        _now: SimTime,
        dir: &DfsObj,
    ) -> Result<Vec<String>, DfsError> {
        if dir.kind != FileKind::Dir {
            return Err(DfsError::NotADir);
        }
        self.meta_ops += 1;
        let mut names: Vec<String> = s
            .cluster
            .list_dkeys(dir.oid)
            .into_iter()
            .filter_map(|d| String::from_utf8(d.as_bytes().to_vec()).ok())
            .filter(|n| n != ".")
            .collect();
        names.sort();
        Ok(names)
    }

    /// Stats an entry under `parent`.
    pub fn stat(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        parent: &DfsObj,
        name: &str,
    ) -> Result<(FileStat, SimTime), DfsError> {
        let (entry, at) = self.read_entry(s, now, 0, parent.oid, name)?;
        Ok((
            FileStat {
                ino: entry.ino,
                kind: entry.kind,
                mode: entry.mode,
                size: entry.size,
            },
            at,
        ))
    }

    /// Removes a file or empty directory from `parent`.
    pub fn unlink(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        parent: &DfsObj,
        name: &str,
    ) -> Result<SimTime, DfsError> {
        let (entry, at) = self.read_entry(s, now, 0, parent.oid, name)?;
        if entry.kind == FileKind::Dir {
            let dir_oid = ObjectId::new(ObjClass::S1, entry.ino);
            if !s.cluster.list_dkeys(dir_oid).is_empty() {
                return Err(DfsError::NotEmpty);
            }
        }
        self.meta_ops += 1;
        // Drop the data object, then the entry.
        let data_oid = ObjectId::new(
            match entry.kind {
                FileKind::File => ObjClass::Sx,
                FileKind::Dir => ObjClass::S1,
            },
            entry.ino,
        );
        s.cluster.punch_object(data_oid);
        s.cluster
            .punch(parent.oid, &DKey::from_str(name), &entry_akey())?;
        Ok(at)
    }

    /// Renames `name` in `parent` to `new_name` in `new_parent`
    /// (entry move; the data object is untouched).
    #[allow(clippy::too_many_arguments)]
    pub fn rename(
        &mut self,
        s: &mut DfsSession<'_>,
        now: SimTime,
        parent: &DfsObj,
        name: &str,
        new_parent: &DfsObj,
        new_name: &str,
    ) -> Result<SimTime, DfsError> {
        let (entry, at) = self.read_entry(s, now, 0, parent.oid, name)?;
        let at = self.write_entry(s, at, 0, new_parent.oid, new_name, &entry)?;
        s.cluster
            .punch(parent.oid, &DKey::from_str(name), &entry_akey())?;
        Ok(at)
    }
}
