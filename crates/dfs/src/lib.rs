//! # ros2-dfs — the POSIX-compatible DAOS File System layer
//!
//! DFS is "a client-side library that maps a POSIX-like namespace onto
//! DAOS containers" (§3.3) — exactly what FIO's DFS engine drives in the
//! paper's end-to-end evaluation. This crate implements that mapping:
//! directories are key-value objects, files are chunked striped array
//! objects, and every call returns its virtual-time completion so the FIO
//! harness can measure it.
//!
//! A model-based property suite (`tests/posix_model.rs`) checks the
//! namespace against an in-memory reference filesystem under random
//! operation sequences.

#![warn(missing_docs)]

pub mod fs;

pub use fs::{Dfs, DfsError, DfsObj, DfsSession, FileKind, FileStat};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use ros2_daos::{DaosClient, DaosCostModel, DaosEngine, EngineCluster};
    use ros2_fabric::{Fabric, NodeSpec};
    use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, NvmeModel, Transport};
    use ros2_nvme::{DataMode, NvmeArray};
    use ros2_sim::SimTime;
    use ros2_spdk::BdevLayer;
    use ros2_verbs::{MemoryDomain, NodeId};

    fn world(ssds: usize) -> (Fabric, EngineCluster, DaosClient) {
        let spec = |name: &str, cores: usize| NodeSpec {
            name: name.into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 8 << 30,
            dpu_tcp_rx: None,
        };
        let mut fabric = Fabric::new(
            Transport::Rdma,
            vec![spec("client", 48), spec("storage", 64)],
            17,
        );
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            ssds,
            DataMode::Stored,
        ));
        let mut engine = DaosEngine::new(
            "pool0",
            bdevs,
            256 << 20,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        engine.cont_create("posix").unwrap();
        let client = DaosClient::connect(
            &mut fabric,
            NodeId(0),
            NodeId(1),
            "tenant",
            "posix",
            4,
            4 << 20,
            MemoryDomain::HostDram,
            DaosCostModel::default_model(),
        )
        .unwrap();
        (fabric, EngineCluster::single(engine), client)
    }

    fn mounted(ssds: usize) -> (Fabric, EngineCluster, DaosClient, Dfs) {
        let (mut fabric, mut cluster, mut client) = world(ssds);
        let dfs = {
            let mut s = DfsSession {
                fabric: &mut fabric,
                cluster: &mut cluster,
                client: &mut client,
            };
            Dfs::format(&mut s, SimTime::ZERO, 1 << 20).unwrap().0
        };
        (fabric, cluster, client, dfs)
    }

    macro_rules! sess {
        ($f:expr, $e:expr, $c:expr) => {
            &mut DfsSession {
                fabric: &mut $f,
                cluster: &mut $e,
                client: &mut $c,
            }
        };
    }

    #[test]
    fn format_and_remount() {
        let (mut f, mut e, mut c, dfs) = mounted(1);
        assert!(dfs.is_mounted());
        assert_eq!(dfs.chunk_size(), 1 << 20);
        let (again, _) = Dfs::mount(sess!(f, e, c), SimTime::from_secs(1)).unwrap();
        assert_eq!(again.chunk_size(), 1 << 20);
    }

    #[test]
    fn create_write_read_round_trip() {
        let (mut f, mut e, mut c, mut dfs) = mounted(1);
        let root = dfs.root();
        let t = SimTime::ZERO;
        let (mut file, t1) = dfs
            .create(sess!(f, e, c), t, &root, "model.bin", 0o644)
            .unwrap();
        let data = Bytes::from(vec![0x42; 3 << 20]); // spans 3 chunks
        let t2 = dfs
            .write(sess!(f, e, c), t1, 0, &mut file, 0, data.clone())
            .unwrap();
        assert_eq!(file.size, 3 << 20);
        let (back, _) = dfs.read(sess!(f, e, c), t2, 0, &file, 0, 3 << 20).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unaligned_rw_across_chunk_boundaries() {
        let (mut f, mut e, mut c, mut dfs) = mounted(1);
        let root = dfs.root();
        let (mut file, t) = dfs
            .create(sess!(f, e, c), SimTime::ZERO, &root, "x", 0o644)
            .unwrap();
        let data: Vec<u8> = (0..3_000_000).map(|i| (i % 251) as u8).collect();
        let off = (1 << 20) - 777;
        let t = dfs
            .write(
                sess!(f, e, c),
                t,
                0,
                &mut file,
                off,
                Bytes::from(data.clone()),
            )
            .unwrap();
        let (back, _) = dfs
            .read(sess!(f, e, c), t, 0, &file, off, data.len() as u64)
            .unwrap();
        assert_eq!(&back[..], &data[..]);
        // A read overlapping the hole before `off` sees zeros then data.
        let (mix, _) = dfs.read(sess!(f, e, c), t, 0, &file, off - 10, 20).unwrap();
        assert!(mix[..10].iter().all(|&b| b == 0));
        assert_eq!(&mix[10..], &data[..10]);
    }

    #[test]
    fn reads_stop_at_eof() {
        let (mut f, mut e, mut c, mut dfs) = mounted(1);
        let root = dfs.root();
        let (mut file, t) = dfs
            .create(sess!(f, e, c), SimTime::ZERO, &root, "short", 0o644)
            .unwrap();
        let t = dfs
            .write(
                sess!(f, e, c),
                t,
                0,
                &mut file,
                0,
                Bytes::from_static(b"hello"),
            )
            .unwrap();
        let (back, _) = dfs.read(sess!(f, e, c), t, 0, &file, 0, 100).unwrap();
        assert_eq!(&back[..], b"hello");
        let (empty, _) = dfs.read(sess!(f, e, c), t, 0, &file, 100, 10).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn zero_length_write_issues_no_data_rpc() {
        let (mut f, mut e, mut c, mut dfs) = mounted(1);
        let root = dfs.root();
        let (mut file, t) = dfs
            .create(sess!(f, e, c), SimTime::ZERO, &root, "empty", 0o644)
            .unwrap();
        let ops_before = c.ops();
        let rpcs_before = e.rpcs();
        let done = dfs
            .write(sess!(f, e, c), t, 0, &mut file, 0, Bytes::new())
            .unwrap();
        assert_eq!(done, t, "no transfer, no virtual time");
        assert_eq!(c.ops(), ops_before, "no client op for an empty write");
        assert_eq!(e.rpcs(), rpcs_before, "no engine RPC for an empty write");
        assert_eq!(file.size, 0);
        // A sparse extension past EOF still persists the new size.
        let at = dfs
            .write(sess!(f, e, c), done, 0, &mut file, 4096, Bytes::new())
            .unwrap();
        assert_eq!(file.size, 4096);
        assert!(at >= done);
        let (st, _) = dfs.stat(sess!(f, e, c), at, &root, "empty").unwrap();
        assert_eq!(st.size, 4096);
    }

    #[test]
    fn namespace_tree_operations() {
        let (mut f, mut e, mut c, mut dfs) = mounted(1);
        let root = dfs.root();
        let t = SimTime::ZERO;
        let (dir, t) = dfs
            .mkdir(sess!(f, e, c), t, &root, "datasets", 0o755)
            .unwrap();
        let (_, t) = dfs
            .create(sess!(f, e, c), t, &dir, "shard0", 0o644)
            .unwrap();
        let (_, t) = dfs
            .create(sess!(f, e, c), t, &dir, "shard1", 0o644)
            .unwrap();
        // Duplicate create fails.
        assert_eq!(
            dfs.create(sess!(f, e, c), t, &dir, "shard0", 0o644)
                .unwrap_err(),
            DfsError::Exists
        );
        let names = dfs.readdir(sess!(f, e, c), t, &dir).unwrap();
        assert_eq!(names, vec!["shard0", "shard1"]);
        // Path lookup walks components.
        let (obj, t) = dfs.lookup(sess!(f, e, c), t, "/datasets/shard1").unwrap();
        assert_eq!(obj.kind, FileKind::File);
        // Stat sees the entry.
        let (st, t) = dfs.stat(sess!(f, e, c), t, &dir, "shard0").unwrap();
        assert_eq!(st.kind, FileKind::File);
        assert_eq!(st.size, 0);
        // Unlink a file, then the (now empty) directory fails while full.
        assert_eq!(
            dfs.unlink(sess!(f, e, c), t, &root, "datasets")
                .unwrap_err(),
            DfsError::NotEmpty
        );
        let t = dfs.unlink(sess!(f, e, c), t, &dir, "shard0").unwrap();
        let t = dfs.unlink(sess!(f, e, c), t, &dir, "shard1").unwrap();
        dfs.unlink(sess!(f, e, c), t, &root, "datasets").unwrap();
        assert_eq!(
            dfs.lookup(sess!(f, e, c), t, "/datasets").unwrap_err(),
            DfsError::NotFound
        );
    }

    #[test]
    fn rename_moves_entries() {
        let (mut f, mut e, mut c, mut dfs) = mounted(1);
        let root = dfs.root();
        let t = SimTime::ZERO;
        let (mut file, t) = dfs.create(sess!(f, e, c), t, &root, "tmp", 0o644).unwrap();
        let t = dfs
            .write(
                sess!(f, e, c),
                t,
                0,
                &mut file,
                0,
                Bytes::from_static(b"ckpt"),
            )
            .unwrap();
        let (dir, t) = dfs.mkdir(sess!(f, e, c), t, &root, "final", 0o755).unwrap();
        let t = dfs
            .rename(sess!(f, e, c), t, &root, "tmp", &dir, "model.ckpt")
            .unwrap();
        assert_eq!(
            dfs.lookup(sess!(f, e, c), t, "/tmp").unwrap_err(),
            DfsError::NotFound
        );
        let (moved, t) = dfs.lookup(sess!(f, e, c), t, "/final/model.ckpt").unwrap();
        let (back, _) = dfs.read(sess!(f, e, c), t, 0, &moved, 0, 4).unwrap();
        assert_eq!(&back[..], b"ckpt");
    }

    #[test]
    fn file_chunks_stripe_across_four_ssds() {
        let (mut f, mut e, mut c, mut dfs) = mounted(4);
        let root = dfs.root();
        let (mut file, t) = dfs
            .create(sess!(f, e, c), SimTime::ZERO, &root, "big", 0o644)
            .unwrap();
        // 16 chunks of 1 MiB.
        let t = dfs
            .write(
                sess!(f, e, c),
                t,
                0,
                &mut file,
                0,
                Bytes::from(vec![1u8; 16 << 20]),
            )
            .unwrap();
        let _ = t;
        // Every device should have received writes.
        for d in 0..4 {
            let stats = e
                .engine_mut(0)
                .bdevs_mut()
                .array()
                .device(d)
                .stats()
                .clone();
            assert!(stats.bytes_written > 0, "device {d} got no chunk writes");
        }
    }

    #[test]
    fn wrong_kind_operations_rejected() {
        let (mut f, mut e, mut c, mut dfs) = mounted(1);
        let root = dfs.root();
        let t = SimTime::ZERO;
        let (dir, t) = dfs.mkdir(sess!(f, e, c), t, &root, "d", 0o755).unwrap();
        let (file, t) = dfs.create(sess!(f, e, c), t, &root, "f", 0o644).unwrap();
        assert_eq!(
            dfs.read(sess!(f, e, c), t, 0, &dir, 0, 10).unwrap_err(),
            DfsError::NotAFile
        );
        assert_eq!(
            dfs.readdir(sess!(f, e, c), t, &file).unwrap_err(),
            DfsError::NotADir
        );
        assert_eq!(
            dfs.mkdir(sess!(f, e, c), t, &file, "sub", 0o755)
                .unwrap_err(),
            DfsError::NotADir
        );
    }
}
