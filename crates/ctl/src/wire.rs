//! Length-prefixed binary framing for control-plane messages.
//!
//! A deliberately small, dependency-free encoding (the role protobuf plays
//! under gRPC): little-endian fixed-width integers, length-prefixed strings
//! and byte blobs, and a one-byte tag per message variant.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encoding buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }
    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }
    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }
    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }
    /// Appends a bool as one byte.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.buf.put_u8(v as u8);
        self
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v.as_bytes());
        self
    }
    /// Appends a length-prefixed byte blob.
    pub fn blob(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Appends a short key (DAOS dkey/akey wire form): a one-byte length
    /// prefix then the bytes. Keys longer than 255 bytes are not
    /// representable — the object model never produces them (dkeys are u64
    /// chunk indices or path components) — and are rejected loudly in
    /// every build: truncating the length prefix would desynchronize the
    /// whole frame for the reader.
    pub fn key(&mut self, v: &[u8]) -> &mut Self {
        assert!(
            v.len() <= u8::MAX as usize,
            "key of {} bytes exceeds the 255-byte wire form",
            v.len()
        );
        self.buf.put_u8(v.len() as u8);
        self.buf.put_slice(v);
        self
    }
    /// Finalizes into immutable bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Decoding failures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// An unknown message tag.
    BadTag(u8),
}

/// Decoding cursor.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Wraps `buf` for reading.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }
    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }
    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }
    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }
    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }
    /// Reads a bool.
    pub fn boolean(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }
    /// Reads a length-prefixed string. Validates UTF-8 in place and copies
    /// once into the returned `String` (the seed validated a throwaway
    /// `to_vec` copy first — two copies per decoded string).
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let raw = self.buf.copy_to_bytes(len);
        std::str::from_utf8(&raw)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }
    /// Reads a length-prefixed blob.
    pub fn blob(&mut self) -> Result<Bytes, WireError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Reads a short key (one-byte length prefix; see [`WireWriter::key`]).
    /// The bytes are returned as a refcounted slice of the frame.
    pub fn key(&mut self) -> Result<Bytes, WireError> {
        let len = self.u8()? as usize;
        self.need(len)?;
        Ok(self.buf.copy_to_bytes(len))
    }
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7).u32(1234).u64(0xDEAD_BEEF_CAFE).boolean(true);
        w.string("hello").blob(b"blobby");
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), 0xDEAD_BEEF_CAFE);
        assert!(r.boolean().unwrap());
        assert_eq!(r.string().unwrap(), "hello");
        assert_eq!(&r.blob().unwrap()[..], b"blobby");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_detected() {
        let mut w = WireWriter::new();
        w.u64(42);
        let bytes = w.finish();
        let mut r = WireReader::new(bytes.slice(0..5));
        assert_eq!(r.u64().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn bad_utf8_detected() {
        let mut w = WireWriter::new();
        w.blob(&[0xFF, 0xFE]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.string().unwrap_err(), WireError::BadUtf8);
    }

    #[test]
    fn keys_round_trip() {
        let mut w = WireWriter::new();
        w.key(b"")
            .key(&7u64.to_le_bytes())
            .key(b"a-longer-file-name.bin");
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.key().unwrap().len(), 0);
        assert_eq!(&r.key().unwrap()[..], &7u64.to_le_bytes());
        assert_eq!(&r.key().unwrap()[..], b"a-longer-file-name.bin");
        assert_eq!(r.remaining(), 0);
        // Truncated key detected.
        let mut w = WireWriter::new();
        w.key(b"abcdef");
        let frame = w.finish();
        let mut r = WireReader::new(frame.slice(0..3));
        assert_eq!(r.key().unwrap_err(), WireError::Truncated);
    }

    #[test]
    #[should_panic(expected = "exceeds the 255-byte wire form")]
    fn oversized_key_rejected_in_every_build() {
        let mut w = WireWriter::new();
        let long = vec![7u8; 300];
        w.key(&long);
    }

    #[test]
    fn empty_string_and_blob() {
        let mut w = WireWriter::new();
        w.string("").blob(b"");
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.string().unwrap(), "");
        assert_eq!(r.blob().unwrap().len(), 0);
    }
}
