//! # ros2-ctl — the lightweight control plane
//!
//! ROS2 separates "a lightweight control plane (gRPC for namespace and
//! capability exchange) from a high-throughput data plane" (abstract).
//! This crate is the control side: a compact binary wire format (the role
//! protobuf plays under gRPC), the session/auth state machine, the message
//! schema for mount/open/close, directory ops, memory-capability exchange
//! and QoS tokens, and a gRPC-class timing model. No payload bytes ever
//! travel here — bulk data belongs to `ros2-fabric`.

#![warn(missing_docs)]

pub mod channel;
pub mod messages;
pub mod wire;

pub use channel::{ControlChannel, ControlError, ControlModel, Session};
pub use messages::{ControlRequest, ControlResponse, MemoryCapability, QosToken};
pub use wire::{WireError, WireReader, WireWriter};
