//! The control channel: session authentication and gRPC-class call timing.
//!
//! Control traffic is "few and latency-insensitive relative to bulk I/O"
//! (§3.2); it crosses a management path (HTTP/2 over kernel TCP), so each
//! call pays a fixed round-trip latency plus a per-byte serialization cost.
//! The channel also owns session state: Hello must precede anything else,
//! and tenant identity sticks to the session (the DPU enforces per-tenant
//! policy with it).

use std::collections::HashMap;

use bytes::Bytes;
use ros2_sim::{SimDuration, SimRng, SimTime};

use crate::messages::{ControlRequest, ControlResponse};

/// Timing model for one control call.
#[derive(Copy, Clone, Debug)]
pub struct ControlModel {
    /// Fixed round-trip latency (HTTP/2 + TCP + scheduling).
    pub rtt: SimDuration,
    /// Serialization cost per payload byte (ps/B), both directions.
    pub ps_per_byte: u64,
    /// How long a caller waits for a reply before declaring the peer
    /// wedged and giving up with [`ControlError::Timeout`] — a call
    /// against a stalled endpoint costs exactly this long, never forever.
    pub deadline: SimDuration,
}

impl ControlModel {
    /// Default gRPC-over-management-network calibration (~150 µs RTT),
    /// with a generous 25 ms deadline (management traffic crosses a
    /// kernel TCP stack with real scheduling jitter).
    pub fn grpc_default() -> Self {
        ControlModel {
            rtt: SimDuration::from_micros(150),
            ps_per_byte: 900,
            deadline: SimDuration::from_millis(25),
        }
    }

    /// The host↔DPU I/O-forwarding doorbell: the submit/poll pair the host
    /// pays per offloaded data-plane op. Unlike the management gRPC channel
    /// it crosses only the PCIe link between the host CPU and the
    /// BlueField-3 (shared queue pair + doorbell write, completion polled
    /// from host-visible memory), so the round trip is ~2 µs, not ~150 µs —
    /// and a 200 µs deadline bounds how long a host poll can spin on a
    /// wedged lane.
    pub fn host_doorbell() -> Self {
        ControlModel {
            rtt: SimDuration::from_micros(2),
            ps_per_byte: 120,
            deadline: SimDuration::from_micros(200),
        }
    }
}

/// Errors the channel itself can produce (before the application handler).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlError {
    /// A non-Hello call arrived on an unauthenticated session.
    NotAuthenticated,
    /// Authentication failed.
    AuthFailed,
    /// The session was closed.
    SessionClosed,
    /// No reply arrived within [`ControlModel::deadline`] — the peer (or
    /// its lane) is wedged. The caller observes a bounded wait, never an
    /// infinite spin.
    Timeout,
}

/// One live session's state.
#[derive(Clone, Debug)]
pub struct Session {
    /// Opaque token the client presents (issued at Welcome).
    pub token: u64,
    /// Authenticated tenant identity.
    pub tenant: String,
    /// Whether Goodbye was processed.
    pub closed: bool,
    /// Completed calls on this session.
    pub calls: u64,
}

/// The control channel endpoint (server side).
#[derive(Debug)]
pub struct ControlChannel {
    model: ControlModel,
    sessions: HashMap<u64, Session>,
    rng: SimRng,
    /// A registry of acceptable tenant credentials (tenant → digest).
    credentials: HashMap<String, Bytes>,
    calls_total: u64,
    /// Fault injection: sessions whose servicing endpoint is wedged —
    /// calls against them never get a reply and fail at the deadline.
    stalled: std::collections::HashSet<u64>,
}

impl ControlChannel {
    /// Creates a channel with the given timing model.
    pub fn new(model: ControlModel, rng: SimRng) -> Self {
        ControlChannel {
            model,
            sessions: HashMap::new(),
            rng,
            credentials: HashMap::new(),
            calls_total: 0,
            stalled: std::collections::HashSet::new(),
        }
    }

    /// Fault injection: wedges (or revives) the endpoint servicing
    /// `token`'s calls. While wedged, every call on the session burns the
    /// model deadline and returns [`ControlError::Timeout`].
    pub fn set_stalled(&mut self, token: u64, on: bool) {
        if on {
            self.stalled.insert(token);
        } else {
            self.stalled.remove(&token);
        }
    }

    /// Whether `token`'s servicing endpoint is currently wedged.
    pub fn is_stalled(&self, token: u64) -> bool {
        self.stalled.contains(&token)
    }

    /// Registers a tenant credential (provisioning).
    pub fn add_tenant(&mut self, tenant: impl Into<String>, digest: Bytes) {
        self.credentials.insert(tenant.into(), digest);
    }

    /// The instant a call issued at `now` with `req_len`/`resp_len` payload
    /// completes.
    pub fn call_done_at(&self, now: SimTime, req_len: usize, resp_len: usize) -> SimTime {
        let bytes = (req_len + resp_len) as u64;
        now + self.model.rtt + SimDuration::from_nanos(bytes * self.model.ps_per_byte / 1000)
    }

    /// Processes the session-layer part of a call. `session` is `None` for
    /// the initial Hello. Returns the (possibly new) session token, or a
    /// session-layer error. Application-layer requests (namespace, caps)
    /// are passed through for the caller to service.
    pub fn admit(
        &mut self,
        session: Option<u64>,
        req: &ControlRequest,
    ) -> Result<u64, ControlError> {
        self.calls_total += 1;
        match req {
            ControlRequest::Hello { tenant, auth } => {
                let expected = self.credentials.get(tenant);
                if expected != Some(auth) {
                    return Err(ControlError::AuthFailed);
                }
                let token = self.rng.next_u64();
                self.sessions.insert(
                    token,
                    Session {
                        token,
                        tenant: tenant.clone(),
                        closed: false,
                        calls: 1,
                    },
                );
                Ok(token)
            }
            _ => {
                let token = session.ok_or(ControlError::NotAuthenticated)?;
                let s = self
                    .sessions
                    .get_mut(&token)
                    .ok_or(ControlError::NotAuthenticated)?;
                if s.closed {
                    return Err(ControlError::SessionClosed);
                }
                s.calls += 1;
                if matches!(req, ControlRequest::Goodbye) {
                    s.closed = true;
                }
                Ok(token)
            }
        }
    }

    /// The session behind a token.
    pub fn session(&self, token: u64) -> Option<&Session> {
        self.sessions.get(&token)
    }

    /// Total calls admitted (including failed ones).
    pub fn calls_total(&self) -> u64 {
        self.calls_total
    }

    /// A convenience wrapper: admit + encode/decode + timing, returning the
    /// response produced by `handler` along with its completion time.
    pub fn call<F>(
        &mut self,
        now: SimTime,
        session: Option<u64>,
        req: ControlRequest,
        handler: F,
    ) -> (SimTime, Result<(u64, ControlResponse), ControlError>)
    where
        F: FnOnce(&str, &ControlRequest) -> ControlResponse,
    {
        let encoded = req.encode();
        if let Some(token) = session {
            if self.stalled.contains(&token) {
                // The request went out but the wedged peer never answers:
                // the caller eats exactly one deadline, not an infinite
                // spin, and sees a typed timeout.
                self.calls_total += 1;
                return (now + self.model.deadline, Err(ControlError::Timeout));
            }
        }
        match self.admit(session, &req) {
            Err(e) => {
                let resp = ControlResponse::Error {
                    reason: format!("{e:?}"),
                };
                let done = self.call_done_at(now, encoded.len(), resp.encode().len());
                (done, Err(e))
            }
            Ok(token) => {
                let tenant = self.sessions[&token].tenant.clone();
                let resp = match &req {
                    ControlRequest::Hello { .. } => ControlResponse::Welcome { session: token },
                    _ => handler(&tenant, &req),
                };
                let done = self.call_done_at(now, encoded.len(), resp.encode().len());
                (done, Ok((token, resp)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> ControlChannel {
        let mut c = ControlChannel::new(ControlModel::grpc_default(), SimRng::new(3));
        c.add_tenant("llm", Bytes::from_static(b"digest"));
        c
    }

    fn hello() -> ControlRequest {
        ControlRequest::Hello {
            tenant: "llm".into(),
            auth: Bytes::from_static(b"digest"),
        }
    }

    #[test]
    fn hello_then_call_works() {
        let mut c = channel();
        let (_, res) = c.call(SimTime::ZERO, None, hello(), |_, _| ControlResponse::Ok);
        let (token, resp) = res.unwrap();
        assert!(matches!(resp, ControlResponse::Welcome { .. }));
        let (_, res2) = c.call(
            SimTime::ZERO,
            Some(token),
            ControlRequest::DfsMount,
            |tenant, _| {
                assert_eq!(tenant, "llm");
                ControlResponse::Handle { handle: 5 }
            },
        );
        assert_eq!(res2.unwrap().1, ControlResponse::Handle { handle: 5 });
        assert_eq!(c.session(token).unwrap().calls, 2);
    }

    #[test]
    fn unauthenticated_calls_rejected() {
        let mut c = channel();
        let (_, res) = c.call(SimTime::ZERO, None, ControlRequest::DfsMount, |_, _| {
            ControlResponse::Ok
        });
        assert_eq!(res.unwrap_err(), ControlError::NotAuthenticated);
        // Bogus token as well.
        let (_, res) = c.call(SimTime::ZERO, Some(42), ControlRequest::DfsMount, |_, _| {
            ControlResponse::Ok
        });
        assert_eq!(res.unwrap_err(), ControlError::NotAuthenticated);
    }

    #[test]
    fn wrong_credentials_rejected() {
        let mut c = channel();
        let bad = ControlRequest::Hello {
            tenant: "llm".into(),
            auth: Bytes::from_static(b"wrong"),
        };
        let (_, res) = c.call(SimTime::ZERO, None, bad, |_, _| ControlResponse::Ok);
        assert_eq!(res.unwrap_err(), ControlError::AuthFailed);
        // Unknown tenant too.
        let unknown = ControlRequest::Hello {
            tenant: "nobody".into(),
            auth: Bytes::from_static(b"digest"),
        };
        let (_, res) = c.call(SimTime::ZERO, None, unknown, |_, _| ControlResponse::Ok);
        assert_eq!(res.unwrap_err(), ControlError::AuthFailed);
    }

    #[test]
    fn goodbye_closes_session() {
        let mut c = channel();
        let (_, res) = c.call(SimTime::ZERO, None, hello(), |_, _| ControlResponse::Ok);
        let token = res.unwrap().0;
        let (_, res) = c.call(
            SimTime::ZERO,
            Some(token),
            ControlRequest::Goodbye,
            |_, _| ControlResponse::Ok,
        );
        assert!(res.is_ok());
        let (_, res) = c.call(
            SimTime::ZERO,
            Some(token),
            ControlRequest::DfsMount,
            |_, _| ControlResponse::Ok,
        );
        assert_eq!(res.unwrap_err(), ControlError::SessionClosed);
    }

    #[test]
    fn stalled_session_times_out_at_the_deadline() {
        let mut c = channel();
        let (_, res) = c.call(SimTime::ZERO, None, hello(), |_, _| ControlResponse::Ok);
        let token = res.unwrap().0;
        c.set_stalled(token, true);
        let t0 = SimTime::from_micros(10);
        let (done, res) = c.call(t0, Some(token), ControlRequest::IoPoll, |_, _| {
            panic!("a wedged endpoint must never service the call")
        });
        assert_eq!(res.unwrap_err(), ControlError::Timeout);
        assert_eq!(done, t0 + ControlModel::grpc_default().deadline);
        // Reviving the endpoint restores normal service.
        c.set_stalled(token, false);
        let (_, res) = c.call(t0, Some(token), ControlRequest::IoPoll, |_, _| {
            ControlResponse::IoDone { ops: 0, retries: 0 }
        });
        assert!(res.is_ok());
    }

    #[test]
    fn call_timing_includes_rtt_and_bytes() {
        let c = channel();
        let small = c.call_done_at(SimTime::ZERO, 10, 10);
        let big = c.call_done_at(SimTime::ZERO, 10, 100_000);
        assert!(small >= SimTime::ZERO + ControlModel::grpc_default().rtt);
        assert!(big > small);
    }
}
