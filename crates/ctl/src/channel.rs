//! The control channel: session authentication and gRPC-class call timing.
//!
//! Control traffic is "few and latency-insensitive relative to bulk I/O"
//! (§3.2); it crosses a management path (HTTP/2 over kernel TCP), so each
//! call pays a fixed round-trip latency plus a per-byte serialization cost.
//! The channel also owns session state: Hello must precede anything else,
//! and tenant identity sticks to the session (the DPU enforces per-tenant
//! policy with it).

use std::collections::HashMap;

use bytes::Bytes;
use ros2_sim::{SimDuration, SimRng, SimTime};

use crate::messages::{ControlRequest, ControlResponse};

/// Timing model for one control call.
#[derive(Copy, Clone, Debug)]
pub struct ControlModel {
    /// Fixed round-trip latency (HTTP/2 + TCP + scheduling).
    pub rtt: SimDuration,
    /// Serialization cost per payload byte (ps/B), both directions.
    pub ps_per_byte: u64,
}

impl ControlModel {
    /// Default gRPC-over-management-network calibration (~150 µs RTT).
    pub fn grpc_default() -> Self {
        ControlModel {
            rtt: SimDuration::from_micros(150),
            ps_per_byte: 900,
        }
    }

    /// The host↔DPU I/O-forwarding doorbell: the submit/poll pair the host
    /// pays per offloaded data-plane op. Unlike the management gRPC channel
    /// it crosses only the PCIe link between the host CPU and the
    /// BlueField-3 (shared queue pair + doorbell write, completion polled
    /// from host-visible memory), so the round trip is ~2 µs, not ~150 µs.
    pub fn host_doorbell() -> Self {
        ControlModel {
            rtt: SimDuration::from_micros(2),
            ps_per_byte: 120,
        }
    }
}

/// Errors the channel itself can produce (before the application handler).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlError {
    /// A non-Hello call arrived on an unauthenticated session.
    NotAuthenticated,
    /// Authentication failed.
    AuthFailed,
    /// The session was closed.
    SessionClosed,
}

/// One live session's state.
#[derive(Clone, Debug)]
pub struct Session {
    /// Opaque token the client presents (issued at Welcome).
    pub token: u64,
    /// Authenticated tenant identity.
    pub tenant: String,
    /// Whether Goodbye was processed.
    pub closed: bool,
    /// Completed calls on this session.
    pub calls: u64,
}

/// The control channel endpoint (server side).
#[derive(Debug)]
pub struct ControlChannel {
    model: ControlModel,
    sessions: HashMap<u64, Session>,
    rng: SimRng,
    /// A registry of acceptable tenant credentials (tenant → digest).
    credentials: HashMap<String, Bytes>,
    calls_total: u64,
}

impl ControlChannel {
    /// Creates a channel with the given timing model.
    pub fn new(model: ControlModel, rng: SimRng) -> Self {
        ControlChannel {
            model,
            sessions: HashMap::new(),
            rng,
            credentials: HashMap::new(),
            calls_total: 0,
        }
    }

    /// Registers a tenant credential (provisioning).
    pub fn add_tenant(&mut self, tenant: impl Into<String>, digest: Bytes) {
        self.credentials.insert(tenant.into(), digest);
    }

    /// The instant a call issued at `now` with `req_len`/`resp_len` payload
    /// completes.
    pub fn call_done_at(&self, now: SimTime, req_len: usize, resp_len: usize) -> SimTime {
        let bytes = (req_len + resp_len) as u64;
        now + self.model.rtt + SimDuration::from_nanos(bytes * self.model.ps_per_byte / 1000)
    }

    /// Processes the session-layer part of a call. `session` is `None` for
    /// the initial Hello. Returns the (possibly new) session token, or a
    /// session-layer error. Application-layer requests (namespace, caps)
    /// are passed through for the caller to service.
    pub fn admit(
        &mut self,
        session: Option<u64>,
        req: &ControlRequest,
    ) -> Result<u64, ControlError> {
        self.calls_total += 1;
        match req {
            ControlRequest::Hello { tenant, auth } => {
                let expected = self.credentials.get(tenant);
                if expected != Some(auth) {
                    return Err(ControlError::AuthFailed);
                }
                let token = self.rng.next_u64();
                self.sessions.insert(
                    token,
                    Session {
                        token,
                        tenant: tenant.clone(),
                        closed: false,
                        calls: 1,
                    },
                );
                Ok(token)
            }
            _ => {
                let token = session.ok_or(ControlError::NotAuthenticated)?;
                let s = self
                    .sessions
                    .get_mut(&token)
                    .ok_or(ControlError::NotAuthenticated)?;
                if s.closed {
                    return Err(ControlError::SessionClosed);
                }
                s.calls += 1;
                if matches!(req, ControlRequest::Goodbye) {
                    s.closed = true;
                }
                Ok(token)
            }
        }
    }

    /// The session behind a token.
    pub fn session(&self, token: u64) -> Option<&Session> {
        self.sessions.get(&token)
    }

    /// Total calls admitted (including failed ones).
    pub fn calls_total(&self) -> u64 {
        self.calls_total
    }

    /// A convenience wrapper: admit + encode/decode + timing, returning the
    /// response produced by `handler` along with its completion time.
    pub fn call<F>(
        &mut self,
        now: SimTime,
        session: Option<u64>,
        req: ControlRequest,
        handler: F,
    ) -> (SimTime, Result<(u64, ControlResponse), ControlError>)
    where
        F: FnOnce(&str, &ControlRequest) -> ControlResponse,
    {
        let encoded = req.encode();
        match self.admit(session, &req) {
            Err(e) => {
                let resp = ControlResponse::Error {
                    reason: format!("{e:?}"),
                };
                let done = self.call_done_at(now, encoded.len(), resp.encode().len());
                (done, Err(e))
            }
            Ok(token) => {
                let tenant = self.sessions[&token].tenant.clone();
                let resp = match &req {
                    ControlRequest::Hello { .. } => ControlResponse::Welcome { session: token },
                    _ => handler(&tenant, &req),
                };
                let done = self.call_done_at(now, encoded.len(), resp.encode().len());
                (done, Ok((token, resp)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> ControlChannel {
        let mut c = ControlChannel::new(ControlModel::grpc_default(), SimRng::new(3));
        c.add_tenant("llm", Bytes::from_static(b"digest"));
        c
    }

    fn hello() -> ControlRequest {
        ControlRequest::Hello {
            tenant: "llm".into(),
            auth: Bytes::from_static(b"digest"),
        }
    }

    #[test]
    fn hello_then_call_works() {
        let mut c = channel();
        let (_, res) = c.call(SimTime::ZERO, None, hello(), |_, _| ControlResponse::Ok);
        let (token, resp) = res.unwrap();
        assert!(matches!(resp, ControlResponse::Welcome { .. }));
        let (_, res2) = c.call(
            SimTime::ZERO,
            Some(token),
            ControlRequest::DfsMount,
            |tenant, _| {
                assert_eq!(tenant, "llm");
                ControlResponse::Handle { handle: 5 }
            },
        );
        assert_eq!(res2.unwrap().1, ControlResponse::Handle { handle: 5 });
        assert_eq!(c.session(token).unwrap().calls, 2);
    }

    #[test]
    fn unauthenticated_calls_rejected() {
        let mut c = channel();
        let (_, res) = c.call(SimTime::ZERO, None, ControlRequest::DfsMount, |_, _| {
            ControlResponse::Ok
        });
        assert_eq!(res.unwrap_err(), ControlError::NotAuthenticated);
        // Bogus token as well.
        let (_, res) = c.call(SimTime::ZERO, Some(42), ControlRequest::DfsMount, |_, _| {
            ControlResponse::Ok
        });
        assert_eq!(res.unwrap_err(), ControlError::NotAuthenticated);
    }

    #[test]
    fn wrong_credentials_rejected() {
        let mut c = channel();
        let bad = ControlRequest::Hello {
            tenant: "llm".into(),
            auth: Bytes::from_static(b"wrong"),
        };
        let (_, res) = c.call(SimTime::ZERO, None, bad, |_, _| ControlResponse::Ok);
        assert_eq!(res.unwrap_err(), ControlError::AuthFailed);
        // Unknown tenant too.
        let unknown = ControlRequest::Hello {
            tenant: "nobody".into(),
            auth: Bytes::from_static(b"digest"),
        };
        let (_, res) = c.call(SimTime::ZERO, None, unknown, |_, _| ControlResponse::Ok);
        assert_eq!(res.unwrap_err(), ControlError::AuthFailed);
    }

    #[test]
    fn goodbye_closes_session() {
        let mut c = channel();
        let (_, res) = c.call(SimTime::ZERO, None, hello(), |_, _| ControlResponse::Ok);
        let token = res.unwrap().0;
        let (_, res) = c.call(
            SimTime::ZERO,
            Some(token),
            ControlRequest::Goodbye,
            |_, _| ControlResponse::Ok,
        );
        assert!(res.is_ok());
        let (_, res) = c.call(
            SimTime::ZERO,
            Some(token),
            ControlRequest::DfsMount,
            |_, _| ControlResponse::Ok,
        );
        assert_eq!(res.unwrap_err(), ControlError::SessionClosed);
    }

    #[test]
    fn call_timing_includes_rtt_and_bytes() {
        let c = channel();
        let small = c.call_done_at(SimTime::ZERO, 10, 10);
        let big = c.call_done_at(SimTime::ZERO, 10, 100_000);
        assert!(small >= SimTime::ZERO + ControlModel::grpc_default().rtt);
        assert!(big > small);
    }
}
