//! The control-plane message schema: session setup, namespace operations,
//! and capability exchange (§3.2: "mount/open/close, directory ops, and
//! capability exchange (e.g., memory registration handles, QoS tokens)").

use bytes::Bytes;

use crate::wire::{WireError, WireReader, WireWriter};

/// A capability describing a registered memory window a peer may target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryCapability {
    /// Remote key value (transported verbatim; only the issuing NIC can
    /// validate it).
    pub rkey: u64,
    /// Base address of the window.
    pub addr: u64,
    /// Window length in bytes.
    pub len: u64,
    /// Expiry in nanoseconds of simulation time (`u64::MAX` = never).
    pub expires_ns: u64,
}

/// A QoS token granting a tenant a rate allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QosToken {
    /// Tenant label.
    pub tenant: String,
    /// Granted operations per second.
    pub ops_per_sec: u64,
    /// Granted bytes per second.
    pub bytes_per_sec: u64,
}

/// Control-plane requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlRequest {
    /// Session establishment with tenant credentials.
    Hello {
        /// Tenant identity.
        tenant: String,
        /// Shared-secret digest (simulated auth).
        auth: Bytes,
    },
    /// Connect to a DAOS pool.
    PoolConnect {
        /// Pool label.
        pool: String,
    },
    /// Open a container within the connected pool.
    ContOpen {
        /// Container label.
        container: String,
    },
    /// Mount the DFS namespace of an open container.
    DfsMount,
    /// Namespace operation relayed to DFS (path-based; the data plane never
    /// sees these).
    DfsNamespace {
        /// Encoded DFS namespace op (opaque to the control plane).
        op: Bytes,
    },
    /// Ask the peer to register a window and return its capability.
    GetCapability {
        /// Required window size.
        len: u64,
        /// Requested validity in nanoseconds.
        scope_ns: u64,
    },
    /// Request a QoS grant.
    QosRequest {
        /// Requested operations per second.
        ops_per_sec: u64,
        /// Requested bytes per second.
        bytes_per_sec: u64,
    },
    /// Tear down the session.
    Goodbye,
    /// Host→DPU data-plane submit: announce `ops` queued I/Os totalling
    /// `bytes` payload bytes. The descriptor is all the host contributes to
    /// an offloaded I/O — staging, transfer, and verification run on the
    /// DPU.
    IoSubmit {
        /// Number of I/Os in the submission.
        ops: u32,
        /// Total payload bytes across the submission.
        bytes: u64,
    },
    /// Host→DPU completion poll: reap finished I/Os from the completion
    /// queue the DPU exposes to the host.
    IoPoll,
    /// RAS-style health event on the control plane: engine `engine` left
    /// the pool (killed/unreachable) and the pool map moved to
    /// `map_version`. Clients react by routing around the dead engine;
    /// rebuild restores redundancy (§3.1's cluster shape).
    RasEvent {
        /// Pool-map slot of the affected engine.
        engine: u32,
        /// The bumped pool-map revision.
        map_version: u64,
    },
    /// Explicit pool-map pull: a client whose request was fenced with a
    /// stale-map error (or whose RAS stream is lagging) asks the control
    /// plane for the authoritative current map. Answered with
    /// [`ControlResponse::MapUpdate`].
    MapQuery,
    /// Background-service report: a coordinated aggregation pass ran for
    /// `container` at epoch `boundary` on every up replica (so their
    /// stores are byte-comparable below it).
    AggregationReport {
        /// The aggregated container.
        container: String,
        /// The cluster-safe boundary every replica aggregated at.
        boundary: u64,
    },
    /// Background-service report: a scrub pass finished. A RAS-style
    /// control event — `found > repaired` means corruption is standing
    /// (no healthy replica to repair from) and operators must act.
    ScrubReport {
        /// Replica-object mismatches detected this pass.
        found: u64,
        /// Mismatches repaired from a healthy replica this pass.
        repaired: u64,
    },
    /// RAS **push** distribution of a pool-map revision: the control plane
    /// encodes the new map once and fans the same wire bytes out to every
    /// subscribed client (unlike [`ControlRequest::MapQuery`], which is a
    /// per-client pull). Same payload as [`ControlResponse::MapUpdate`] —
    /// revision, one health byte per slot, and the pending-kill slot — so
    /// the receiver reconstructs degraded routing exactly; delivery
    /// latency is per-subscriber and fault-injectable.
    MapPush {
        /// The map revision being distributed.
        version: u64,
        /// Per-slot health, one byte per pool-map slot (1 = up).
        healths: Bytes,
        /// Slot of an unrebuilt kill, or `u32::MAX` for none.
        pending_dead: u32,
    },
}

/// Control-plane responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlResponse {
    /// Session established; carries the session token.
    Welcome {
        /// Opaque session token.
        session: u64,
    },
    /// Generic success.
    Ok,
    /// Pool/container handle.
    Handle {
        /// Opaque handle value.
        handle: u64,
    },
    /// Namespace operation result (opaque payload).
    NamespaceResult {
        /// Encoded result.
        result: Bytes,
    },
    /// A memory capability.
    Capability(MemoryCapability),
    /// A QoS token.
    Qos(QosToken),
    /// Failure with an error string.
    Error {
        /// Human-readable reason.
        reason: String,
    },
    /// Completion-queue state returned to an [`ControlRequest::IoSubmit`] /
    /// [`ControlRequest::IoPoll`] caller.
    IoDone {
        /// I/Os reaped by this call.
        ops: u32,
        /// Recovery-ladder re-stages the DPU performed on the host's
        /// behalf while completing those I/Os (surfaced so the host can
        /// account retry behavior without owning the data plane).
        retries: u32,
    },
    /// The authoritative pool map, answering [`ControlRequest::MapQuery`]
    /// (and carried by asynchronously delivered RAS pushes): the revision,
    /// one health byte per slot (1 = up), and the slot of an unrebuilt
    /// kill (`u32::MAX` = none) so the receiver can reconstruct degraded
    /// routing exactly.
    MapUpdate {
        /// The map revision.
        version: u64,
        /// Per-slot health, one byte per pool-map slot (1 = up).
        healths: Bytes,
        /// Slot of an unrebuilt kill, or `u32::MAX` for none.
        pending_dead: u32,
    },
}

impl ControlRequest {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        match self {
            ControlRequest::Hello { tenant, auth } => {
                w.u8(0).string(tenant).blob(auth);
            }
            ControlRequest::PoolConnect { pool } => {
                w.u8(1).string(pool);
            }
            ControlRequest::ContOpen { container } => {
                w.u8(2).string(container);
            }
            ControlRequest::DfsMount => {
                w.u8(3);
            }
            ControlRequest::DfsNamespace { op } => {
                w.u8(4).blob(op);
            }
            ControlRequest::GetCapability { len, scope_ns } => {
                w.u8(5).u64(*len).u64(*scope_ns);
            }
            ControlRequest::QosRequest {
                ops_per_sec,
                bytes_per_sec,
            } => {
                w.u8(6).u64(*ops_per_sec).u64(*bytes_per_sec);
            }
            ControlRequest::Goodbye => {
                w.u8(7);
            }
            ControlRequest::IoSubmit { ops, bytes } => {
                w.u8(8).u32(*ops).u64(*bytes);
            }
            ControlRequest::IoPoll => {
                w.u8(9);
            }
            ControlRequest::RasEvent {
                engine,
                map_version,
            } => {
                w.u8(10).u32(*engine).u64(*map_version);
            }
            ControlRequest::MapQuery => {
                w.u8(11);
            }
            ControlRequest::AggregationReport {
                container,
                boundary,
            } => {
                w.u8(12).string(container).u64(*boundary);
            }
            ControlRequest::ScrubReport { found, repaired } => {
                w.u8(13).u64(*found).u64(*repaired);
            }
            ControlRequest::MapPush {
                version,
                healths,
                pending_dead,
            } => {
                w.u8(14).u64(*version).blob(healths).u32(*pending_dead);
            }
        }
        w.finish()
    }

    /// Decodes from wire bytes.
    pub fn decode(buf: Bytes) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        Ok(match r.u8()? {
            0 => ControlRequest::Hello {
                tenant: r.string()?,
                auth: r.blob()?,
            },
            1 => ControlRequest::PoolConnect { pool: r.string()? },
            2 => ControlRequest::ContOpen {
                container: r.string()?,
            },
            3 => ControlRequest::DfsMount,
            4 => ControlRequest::DfsNamespace { op: r.blob()? },
            5 => ControlRequest::GetCapability {
                len: r.u64()?,
                scope_ns: r.u64()?,
            },
            6 => ControlRequest::QosRequest {
                ops_per_sec: r.u64()?,
                bytes_per_sec: r.u64()?,
            },
            7 => ControlRequest::Goodbye,
            8 => ControlRequest::IoSubmit {
                ops: r.u32()?,
                bytes: r.u64()?,
            },
            9 => ControlRequest::IoPoll,
            10 => ControlRequest::RasEvent {
                engine: r.u32()?,
                map_version: r.u64()?,
            },
            11 => ControlRequest::MapQuery,
            12 => ControlRequest::AggregationReport {
                container: r.string()?,
                boundary: r.u64()?,
            },
            13 => ControlRequest::ScrubReport {
                found: r.u64()?,
                repaired: r.u64()?,
            },
            14 => ControlRequest::MapPush {
                version: r.u64()?,
                healths: r.blob()?,
                pending_dead: r.u32()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl ControlResponse {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        match self {
            ControlResponse::Welcome { session } => {
                w.u8(0).u64(*session);
            }
            ControlResponse::Ok => {
                w.u8(1);
            }
            ControlResponse::Handle { handle } => {
                w.u8(2).u64(*handle);
            }
            ControlResponse::NamespaceResult { result } => {
                w.u8(3).blob(result);
            }
            ControlResponse::Capability(c) => {
                w.u8(4).u64(c.rkey).u64(c.addr).u64(c.len).u64(c.expires_ns);
            }
            ControlResponse::Qos(q) => {
                w.u8(5)
                    .string(&q.tenant)
                    .u64(q.ops_per_sec)
                    .u64(q.bytes_per_sec);
            }
            ControlResponse::Error { reason } => {
                w.u8(6).string(reason);
            }
            ControlResponse::IoDone { ops, retries } => {
                w.u8(7).u32(*ops).u32(*retries);
            }
            ControlResponse::MapUpdate {
                version,
                healths,
                pending_dead,
            } => {
                w.u8(8).u64(*version).blob(healths).u32(*pending_dead);
            }
        }
        w.finish()
    }

    /// Decodes from wire bytes.
    pub fn decode(buf: Bytes) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        Ok(match r.u8()? {
            0 => ControlResponse::Welcome { session: r.u64()? },
            1 => ControlResponse::Ok,
            2 => ControlResponse::Handle { handle: r.u64()? },
            3 => ControlResponse::NamespaceResult { result: r.blob()? },
            4 => ControlResponse::Capability(MemoryCapability {
                rkey: r.u64()?,
                addr: r.u64()?,
                len: r.u64()?,
                expires_ns: r.u64()?,
            }),
            5 => ControlResponse::Qos(QosToken {
                tenant: r.string()?,
                ops_per_sec: r.u64()?,
                bytes_per_sec: r.u64()?,
            }),
            6 => ControlResponse::Error {
                reason: r.string()?,
            },
            7 => ControlResponse::IoDone {
                ops: r.u32()?,
                retries: r.u32()?,
            },
            8 => ControlResponse::MapUpdate {
                version: r.u64()?,
                healths: r.blob()?,
                pending_dead: r.u32()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: ControlRequest) {
        let encoded = req.encode();
        assert_eq!(ControlRequest::decode(encoded).unwrap(), req);
    }

    fn round_trip_resp(resp: ControlResponse) {
        let encoded = resp.encode();
        assert_eq!(ControlResponse::decode(encoded).unwrap(), resp);
    }

    #[test]
    fn all_requests_round_trip() {
        round_trip_req(ControlRequest::Hello {
            tenant: "llm-train".into(),
            auth: Bytes::from_static(b"secret-digest"),
        });
        round_trip_req(ControlRequest::PoolConnect {
            pool: "pool0".into(),
        });
        round_trip_req(ControlRequest::ContOpen {
            container: "posix-cont".into(),
        });
        round_trip_req(ControlRequest::DfsMount);
        round_trip_req(ControlRequest::DfsNamespace {
            op: Bytes::from_static(b"\x01mkdir /data"),
        });
        round_trip_req(ControlRequest::GetCapability {
            len: 1 << 20,
            scope_ns: 5_000_000_000,
        });
        round_trip_req(ControlRequest::QosRequest {
            ops_per_sec: 100_000,
            bytes_per_sec: 1 << 30,
        });
        round_trip_req(ControlRequest::Goodbye);
        round_trip_req(ControlRequest::IoSubmit {
            ops: 32,
            bytes: 32 << 20,
        });
        round_trip_req(ControlRequest::IoPoll);
        round_trip_req(ControlRequest::RasEvent {
            engine: 3,
            map_version: 17,
        });
        round_trip_req(ControlRequest::MapQuery);
        round_trip_req(ControlRequest::AggregationReport {
            container: "posix-cont".into(),
            boundary: 4242,
        });
        round_trip_req(ControlRequest::ScrubReport {
            found: 3,
            repaired: 2,
        });
        round_trip_req(ControlRequest::MapPush {
            version: 7,
            healths: Bytes::from_static(&[1, 1, 0, 1]),
            pending_dead: 2,
        });
    }

    #[test]
    fn all_responses_round_trip() {
        round_trip_resp(ControlResponse::Welcome { session: 99 });
        round_trip_resp(ControlResponse::Ok);
        round_trip_resp(ControlResponse::Handle { handle: 0xF00D });
        round_trip_resp(ControlResponse::NamespaceResult {
            result: Bytes::from_static(b"dirents"),
        });
        round_trip_resp(ControlResponse::Capability(MemoryCapability {
            rkey: 0xA11CE,
            addr: 4096,
            len: 1 << 20,
            expires_ns: u64::MAX,
        }));
        round_trip_resp(ControlResponse::Qos(QosToken {
            tenant: "tenant-b".into(),
            ops_per_sec: 50_000,
            bytes_per_sec: 500 << 20,
        }));
        round_trip_resp(ControlResponse::Error {
            reason: "no such pool".into(),
        });
        round_trip_resp(ControlResponse::IoDone {
            ops: 32,
            retries: 2,
        });
        round_trip_resp(ControlResponse::MapUpdate {
            version: 3,
            healths: Bytes::from_static(&[1, 0, 1, 1]),
            pending_dead: 1,
        });
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut w = WireWriter::new();
        w.u8(200);
        assert_eq!(
            ControlRequest::decode(w.finish()).unwrap_err(),
            WireError::BadTag(200)
        );
    }
}
