//! Multi-SSD arrays: the paper's 1- and 4-drive storage configurations.

use bytes::Bytes;
use ros2_hw::{NvmeModel, LBA_SIZE};
use ros2_sim::{ResourceStats, SimTime};

use crate::backing::Backing;
use crate::device::{NvmeCmd, NvmeCompletion, NvmeDevice, NvmeError, NvmeStats};

/// How the array is created: every drive stored, or every drive pattern.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DataMode {
    /// Sparse page store, read-your-writes fidelity.
    Stored,
    /// Address-derived contents, no retention (for large sweeps).
    Pattern,
    /// Zero contents, no retention, near-free reads (throughput sweeps).
    Null,
}

/// A JBOD of identical simulated NVMe devices.
#[derive(Debug)]
pub struct NvmeArray {
    devices: Vec<NvmeDevice>,
}

impl NvmeArray {
    /// Creates `n` devices from `model`, seeded distinctly in pattern mode.
    pub fn new(model: NvmeModel, n: usize, mode: DataMode) -> Self {
        assert!(n > 0, "empty array");
        let devices = (0..n)
            .map(|i| {
                let backing = match mode {
                    DataMode::Stored => Backing::stored(),
                    DataMode::Pattern => Backing::pattern(0x5eed_0000 + i as u64),
                    DataMode::Null => Backing::null(),
                };
                NvmeDevice::new(model.clone(), backing)
            })
            .collect();
        NvmeArray { devices }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the array has no devices (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Submits to device `dev`.
    pub fn submit(
        &mut self,
        dev: usize,
        now: SimTime,
        cmd: NvmeCmd,
    ) -> Result<NvmeCompletion, NvmeError> {
        self.devices[dev].submit(now, cmd)
    }

    /// A read on device `dev`.
    pub fn read(
        &mut self,
        dev: usize,
        now: SimTime,
        slba: u64,
        nlb: u32,
    ) -> Result<NvmeCompletion, NvmeError> {
        self.submit(dev, now, NvmeCmd::read(slba, nlb))
    }

    /// A write on device `dev`.
    pub fn write(
        &mut self,
        dev: usize,
        now: SimTime,
        slba: u64,
        data: Bytes,
    ) -> Result<NvmeCompletion, NvmeError> {
        self.submit(dev, now, NvmeCmd::write(slba, data))
    }

    /// Immutable device access.
    pub fn device(&self, dev: usize) -> &NvmeDevice {
        &self.devices[dev]
    }

    /// Mutable device access.
    pub fn device_mut(&mut self, dev: usize) -> &mut NvmeDevice {
        &mut self.devices[dev]
    }

    /// Mutable access to every device at once — the engine's per-target
    /// sharding borrows each device disjointly for parallel execution.
    pub fn devices_mut(&mut self) -> &mut [NvmeDevice] {
        &mut self.devices
    }

    /// Sums stats across the array.
    pub fn total_stats(&self) -> NvmeStats {
        let mut t = NvmeStats::default();
        for d in &self.devices {
            let s = d.stats();
            t.bytes_read += s.bytes_read;
            t.bytes_written += s.bytes_written;
            t.reads += s.reads;
            t.writes += s.writes;
            t.flushes += s.flushes;
            t.deallocates += s.deallocates;
            t.queue_full_rejections += s.queue_full_rejections;
        }
        t
    }

    /// Total LBAs per device (uniform by construction).
    pub fn lba_count_per_device(&self) -> u64 {
        self.devices[0].model().lba_count()
    }

    /// Resets every device's timing state to t=0.
    pub fn reset_timing(&mut self) {
        for d in &mut self.devices {
            d.reset_timing();
        }
    }

    /// Aggregate booking / fast-path counters over every device's channel
    /// pool.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut total = ResourceStats::default();
        for d in &self.devices {
            total.merge(d.resource_stats());
        }
        total
    }

    /// Aggregate data-plane (copy / zero-copy / CRC) counters over every
    /// device's backing store.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        let mut total = ros2_buf::DataPlaneStats::default();
        for d in &self.devices {
            total.merge(d.data_plane_stats());
        }
        total
    }

    /// Total array capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.model().lba_count() * LBA_SIZE)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_are_independent() {
        let mut a = NvmeArray::new(NvmeModel::enterprise_1600(), 2, DataMode::Stored);
        let data = Bytes::from(vec![5u8; LBA_SIZE as usize]);
        a.write(0, SimTime::ZERO, 7, data.clone()).unwrap();
        let r0 = a.read(0, SimTime::from_secs(1), 7, 1).unwrap();
        let r1 = a.read(1, SimTime::from_secs(1), 7, 1).unwrap();
        assert_eq!(r0.data.unwrap(), data);
        assert!(r1.data.unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn array_bandwidth_scales_with_drives() {
        // The Fig. 3c effect: 4 drives give ~4x the large-block rate.
        let rate = |drives: usize| {
            let mut a = NvmeArray::new(NvmeModel::enterprise_1600(), drives, DataMode::Pattern);
            let per_dev = 64u64;
            let mut last = SimTime::ZERO;
            for d in 0..drives {
                for i in 0..per_dev {
                    let c = a.read(d, SimTime::ZERO, i * 256, 256).unwrap();
                    last = last.max(c.at);
                }
            }
            (drives as u64 * per_dev * (1 << 20)) as f64 / last.as_secs_f64()
        };
        let r1 = rate(1);
        let r4 = rate(4);
        let scale = r4 / r1;
        assert!((3.8..4.2).contains(&scale), "scaling {scale}");
    }

    #[test]
    fn pattern_devices_differ_by_seed() {
        let mut a = NvmeArray::new(NvmeModel::enterprise_1600(), 2, DataMode::Pattern);
        let r0 = a.read(0, SimTime::ZERO, 0, 1).unwrap().data.unwrap();
        let r1 = a.read(1, SimTime::ZERO, 0, 1).unwrap().data.unwrap();
        assert_ne!(r0, r1);
    }

    #[test]
    fn total_stats_aggregate() {
        let mut a = NvmeArray::new(NvmeModel::enterprise_1600(), 3, DataMode::Pattern);
        for d in 0..3 {
            a.read(d, SimTime::ZERO, 0, 1).unwrap();
        }
        let t = a.total_stats();
        assert_eq!(t.reads, 3);
        assert_eq!(t.bytes_read, 3 * LBA_SIZE);
    }

    #[test]
    fn capacity_is_summed() {
        let a = NvmeArray::new(NvmeModel::enterprise_1600(), 4, DataMode::Pattern);
        assert_eq!(
            a.capacity(),
            4 * 1600 * 1000 * 1000 * 1000 / LBA_SIZE * LBA_SIZE
        );
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }
}
