//! # ros2-nvme — simulated NVMe SSDs with functional contents
//!
//! Each device pairs the calibrated timing model from `ros2-hw` (channel
//! occupancy, bandwidth ceilings, access latencies, queue-depth limits) with
//! a *functional* backing store: writes are retained and reads return real
//! bytes, so every layer above — SPDK, DAOS, DFS — moves genuine data. For
//! memory-bounded benchmark sweeps a pattern-mode backing derives contents
//! from the address instead.
//!
//! ## Example
//!
//! ```
//! use bytes::Bytes;
//! use ros2_hw::{NvmeModel, LBA_SIZE};
//! use ros2_nvme::{Backing, NvmeCmd, NvmeDevice};
//! use ros2_sim::SimTime;
//!
//! let mut ssd = NvmeDevice::new(NvmeModel::enterprise_1600(), Backing::stored());
//! let payload = Bytes::from(vec![7u8; LBA_SIZE as usize]);
//! let write = ssd.submit(SimTime::ZERO, NvmeCmd::write(0, payload.clone())).unwrap();
//! let read = ssd.submit(write.at, NvmeCmd::read(0, 1)).unwrap();
//! assert_eq!(read.data.unwrap(), payload);
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod backing;
pub mod device;

pub use array::{DataMode, NvmeArray};
pub use backing::{Backing, PAGE};
pub use device::{NvmeCmd, NvmeCompletion, NvmeDevice, NvmeError, NvmeOpcode, NvmeStats};
