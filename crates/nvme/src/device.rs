//! A simulated NVMe SSD: functional contents plus the calibrated timing
//! model from [`ros2_hw::NvmeModel`].
//!
//! Commands are submitted with the current instant and return the completion
//! time immediately (the time-calculator idiom — see `ros2-sim`). The device
//! enforces its queue-depth limit, addresses in 4 KiB LBAs, and tracks
//! enough statistics for utilization reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bytes::Bytes;
use ros2_hw::{NvmeModel, LBA_SIZE};
use ros2_sim::{ResourceStats, ServerPool, SimDuration, SimTime};

use crate::backing::Backing;

/// NVMe command opcodes (the subset the I/O path uses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NvmeOpcode {
    /// Read `nlb` blocks from `slba`.
    Read,
    /// Write the attached payload at `slba`.
    Write,
    /// Flush volatile state (modelled as a fixed-latency barrier).
    Flush,
    /// Deallocate (TRIM) `nlb` blocks at `slba`.
    Deallocate,
}

/// One NVMe command.
#[derive(Clone, Debug)]
pub struct NvmeCmd {
    /// Operation.
    pub opcode: NvmeOpcode,
    /// Starting LBA.
    pub slba: u64,
    /// Number of logical blocks.
    pub nlb: u32,
    /// Payload for writes (`nlb * LBA_SIZE` bytes).
    pub data: Option<Bytes>,
    /// Sequential-access hint (set by submitters that detect adjacency);
    /// grants the controller's read-ahead / write-combining latency.
    pub sequential: bool,
}

impl NvmeCmd {
    /// A read of `nlb` blocks at `slba`.
    pub fn read(slba: u64, nlb: u32) -> Self {
        NvmeCmd {
            opcode: NvmeOpcode::Read,
            slba,
            nlb,
            data: None,
            sequential: false,
        }
    }

    /// A write of `data` (must be LBA-aligned in length) at `slba`.
    pub fn write(slba: u64, data: Bytes) -> Self {
        let nlb = (data.len() as u64 / LBA_SIZE) as u32;
        NvmeCmd {
            opcode: NvmeOpcode::Write,
            slba,
            nlb,
            data: Some(data),
            sequential: false,
        }
    }

    /// A flush barrier.
    pub fn flush() -> Self {
        NvmeCmd {
            opcode: NvmeOpcode::Flush,
            slba: 0,
            nlb: 0,
            data: None,
            sequential: false,
        }
    }

    /// A deallocate of `nlb` blocks at `slba`.
    pub fn deallocate(slba: u64, nlb: u32) -> Self {
        NvmeCmd {
            opcode: NvmeOpcode::Deallocate,
            slba,
            nlb,
            data: None,
            sequential: false,
        }
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        self.nlb as u64 * LBA_SIZE
    }
}

/// Why a command was rejected at submission.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NvmeError {
    /// The LBA range falls outside the namespace.
    OutOfRange,
    /// The device queue is full (more than `max_qd` outstanding).
    QueueFull,
    /// A write's payload length disagrees with `nlb`.
    BadPayload,
}

/// A completed command: when it finishes and what it returned.
#[derive(Clone, Debug)]
pub struct NvmeCompletion {
    /// Completion instant.
    pub at: SimTime,
    /// Data for reads.
    pub data: Option<Bytes>,
}

/// Aggregated device statistics.
#[derive(Clone, Debug, Default)]
pub struct NvmeStats {
    /// Bytes read from media.
    pub bytes_read: u64,
    /// Bytes written to media.
    pub bytes_written: u64,
    /// Completed read commands.
    pub reads: u64,
    /// Completed write commands.
    pub writes: u64,
    /// Flush commands.
    pub flushes: u64,
    /// Deallocate commands.
    pub deallocates: u64,
    /// Commands rejected with `QueueFull`.
    pub queue_full_rejections: u64,
}

/// A simulated NVMe SSD.
#[derive(Debug)]
pub struct NvmeDevice {
    model: NvmeModel,
    backing: Backing,
    channels: ServerPool,
    /// Completion times of outstanding commands (for QD accounting).
    outstanding: BinaryHeap<Reverse<SimTime>>,
    stats: NvmeStats,
}

impl NvmeDevice {
    /// Creates a device with the given timing model and backing mode.
    pub fn new(model: NvmeModel, backing: Backing) -> Self {
        let channels = ServerPool::new(model.channels);
        NvmeDevice {
            model,
            backing,
            channels,
            outstanding: BinaryHeap::new(),
            stats: NvmeStats::default(),
        }
    }

    /// The device's timing model.
    pub fn model(&self) -> &NvmeModel {
        &self.model
    }

    /// Device statistics so far.
    pub fn stats(&self) -> &NvmeStats {
        &self.stats
    }

    /// Booking / fast-path counters for the device's channel pool.
    pub fn resource_stats(&self) -> ResourceStats {
        self.channels.stats()
    }

    /// Number of commands still in flight at `now`.
    pub fn inflight(&mut self, now: SimTime) -> usize {
        while let Some(&Reverse(t)) = self.outstanding.peek() {
            if t <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        self.outstanding.len()
    }

    /// Submits a command at `now`; returns its completion.
    ///
    /// The returned completion carries the finish instant computed from the
    /// channel-occupancy model; the caller schedules its own continuation.
    pub fn submit(&mut self, now: SimTime, cmd: NvmeCmd) -> Result<NvmeCompletion, NvmeError> {
        if self.inflight(now) >= self.model.max_qd {
            self.stats.queue_full_rejections += 1;
            return Err(NvmeError::QueueFull);
        }
        let end_lba = cmd.slba + cmd.nlb as u64;
        if end_lba > self.model.lba_count() {
            return Err(NvmeError::OutOfRange);
        }

        let completion = match cmd.opcode {
            NvmeOpcode::Read => {
                let bytes = cmd.bytes();
                let grant = self
                    .channels
                    .submit(now, self.model.occupancy(bytes, false));
                let at = grant.finish + self.model.access_hinted(false, cmd.sequential);
                let data = self.backing.read(cmd.slba * LBA_SIZE, bytes as usize);
                self.stats.bytes_read += bytes;
                self.stats.reads += 1;
                NvmeCompletion {
                    at,
                    data: Some(data),
                }
            }
            NvmeOpcode::Write => {
                let data = cmd.data.as_ref().ok_or(NvmeError::BadPayload)?;
                if data.len() as u64 != cmd.bytes() {
                    return Err(NvmeError::BadPayload);
                }
                let bytes = cmd.bytes();
                let grant = self.channels.submit(now, self.model.occupancy(bytes, true));
                let at = grant.finish + self.model.access_hinted(true, cmd.sequential);
                self.backing.write_bytes(cmd.slba * LBA_SIZE, data);
                self.stats.bytes_written += bytes;
                self.stats.writes += 1;
                NvmeCompletion { at, data: None }
            }
            NvmeOpcode::Flush => {
                // A flush is a barrier: it completes once every channel has
                // drained, plus a small controller round trip.
                let at = self.channels.drain_time(now) + SimDuration::from_micros(5);
                self.stats.flushes += 1;
                NvmeCompletion { at, data: None }
            }
            NvmeOpcode::Deallocate => {
                self.backing
                    .discard(cmd.slba * LBA_SIZE, cmd.nlb as u64 * LBA_SIZE);
                let at = now + SimDuration::from_micros(10);
                self.stats.deallocates += 1;
                NvmeCompletion { at, data: None }
            }
        };
        self.outstanding.push(Reverse(completion.at));
        Ok(completion)
    }

    /// Direct functional access for tests and preconditioning (bypasses
    /// timing entirely).
    pub fn backing_mut(&mut self) -> &mut Backing {
        &mut self.backing
    }

    /// The CRC32C of stored range `[offset, offset+len)` — served from the
    /// backing's CRC cache, no timing charged (callers model CPU cost).
    pub fn crc_of_range(&mut self, offset: u64, len: u64) -> u32 {
        self.backing.crc_of_range(offset, len)
    }

    /// Seeds the backing store's chunk-CRC cache for a just-written range
    /// (writers that checksummed the payload anyway hand the CRCs down so
    /// the store's first verify never rescans).
    pub fn seed_crc_cache<I>(&mut self, offset: u64, crcs: I)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        self.backing.seed_crc_cache(offset, crcs);
    }

    /// Data-plane (copy vs zero-copy, CRC scan vs combine) counters.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        self.backing.data_plane_stats()
    }

    /// Cumulative channel busy time (utilization reporting).
    pub fn busy_time(&self) -> SimDuration {
        self.channels.busy_time()
    }

    /// Resets channel occupancy and in-flight accounting to t=0, keeping
    /// contents and statistics (for precondition-then-measure runs).
    pub fn reset_timing(&mut self) {
        self.channels.reset_timing();
        self.outstanding.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NvmeDevice {
        NvmeDevice::new(NvmeModel::enterprise_1600(), Backing::stored())
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut d = dev();
        let payload = Bytes::from(vec![0xAB; LBA_SIZE as usize * 2]);
        let w = d
            .submit(SimTime::ZERO, NvmeCmd::write(10, payload.clone()))
            .unwrap();
        let r = d.submit(w.at, NvmeCmd::read(10, 2)).unwrap();
        assert_eq!(r.data.unwrap(), payload);
        assert!(r.at > w.at);
    }

    #[test]
    fn read_latency_matches_model_at_low_qd() {
        let mut d = dev();
        let c = d.submit(SimTime::ZERO, NvmeCmd::read(0, 1)).unwrap();
        let expect = d.model().occupancy(LBA_SIZE, false) + d.model().access(false);
        assert_eq!(c.at, SimTime::ZERO + expect);
    }

    #[test]
    fn bandwidth_ceiling_emerges_under_load() {
        let mut d = dev();
        // 256 x 1 MiB reads at t=0: aggregate rate must approach read_bw.
        let n = 256u64;
        let mb = 1 << 20;
        let mut last = SimTime::ZERO;
        for i in 0..n {
            let c = d
                .submit(SimTime::ZERO, NvmeCmd::read(i * 256, 256))
                .unwrap();
            last = last.max(c.at);
        }
        let rate = (n * mb) as f64 / last.as_secs_f64();
        let target = d.model().read_bw as f64;
        assert!(
            (rate - target).abs() / target < 0.05,
            "rate {:.2} GiB/s vs target {:.2} GiB/s",
            rate / (1u64 << 30) as f64,
            target / (1u64 << 30) as f64
        );
    }

    #[test]
    fn queue_full_rejects_beyond_max_qd() {
        let mut d = dev();
        let qd = d.model().max_qd;
        for i in 0..qd {
            d.submit(SimTime::ZERO, NvmeCmd::read(i as u64, 1)).unwrap();
        }
        let err = d.submit(SimTime::ZERO, NvmeCmd::read(0, 1)).unwrap_err();
        assert_eq!(err, NvmeError::QueueFull);
        assert_eq!(d.stats().queue_full_rejections, 1);
        // After completions drain, submission works again.
        let later = SimTime::from_secs(10);
        assert!(d.submit(later, NvmeCmd::read(0, 1)).is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = dev();
        let last = d.model().lba_count();
        assert_eq!(
            d.submit(SimTime::ZERO, NvmeCmd::read(last, 1)).unwrap_err(),
            NvmeError::OutOfRange
        );
        assert!(d.submit(SimTime::ZERO, NvmeCmd::read(last - 1, 1)).is_ok());
    }

    #[test]
    fn bad_payload_rejected() {
        let mut d = dev();
        let cmd = NvmeCmd {
            opcode: NvmeOpcode::Write,
            slba: 0,
            nlb: 2,
            data: Some(Bytes::from(vec![0u8; 100])),
            sequential: false,
        };
        assert_eq!(
            d.submit(SimTime::ZERO, cmd).unwrap_err(),
            NvmeError::BadPayload
        );
    }

    #[test]
    fn flush_waits_for_channel_drain() {
        let mut d = dev();
        let w = d
            .submit(
                SimTime::ZERO,
                NvmeCmd::write(0, Bytes::from(vec![1u8; 1 << 20])),
            )
            .unwrap();
        let f = d.submit(SimTime::ZERO, NvmeCmd::flush()).unwrap();
        assert!(f.at + d.model().access(true) >= w.at);
        assert_eq!(d.stats().flushes, 1);
    }

    #[test]
    fn deallocate_zeroes_content() {
        let mut d = dev();
        d.submit(
            SimTime::ZERO,
            NvmeCmd::write(5, Bytes::from(vec![9u8; LBA_SIZE as usize])),
        )
        .unwrap();
        d.submit(SimTime::from_secs(1), NvmeCmd::deallocate(5, 1))
            .unwrap();
        let r = d
            .submit(SimTime::from_secs(2), NvmeCmd::read(5, 1))
            .unwrap();
        assert!(r.data.unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dev();
        d.submit(SimTime::ZERO, NvmeCmd::read(0, 4)).unwrap();
        d.submit(
            SimTime::ZERO,
            NvmeCmd::write(0, Bytes::from(vec![0u8; LBA_SIZE as usize])),
        )
        .unwrap();
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().bytes_read, 4 * LBA_SIZE);
        assert_eq!(d.stats().bytes_written, LBA_SIZE);
    }

    #[test]
    fn inflight_prunes_completed() {
        let mut d = dev();
        let c = d.submit(SimTime::ZERO, NvmeCmd::read(0, 1)).unwrap();
        assert_eq!(d.inflight(SimTime::ZERO), 1);
        assert_eq!(d.inflight(c.at), 0);
    }
}
