//! The closed-loop FIO driver: per-job queue depth, ramp then measure,
//! latency accounting — the methodology every figure in the paper uses.

use ros2_sim::{EventQueue, IoReport, SimDuration, SimRng, SimTime};

#[cfg(test)]
use crate::spec::RwMode;
use crate::spec::{FioReport, JobSpec};

/// One I/O as the driver issues it to a backend.
#[derive(Clone, Debug)]
pub struct FioOp {
    /// Write (true) or read.
    pub write: bool,
    /// Byte offset within the job's region/file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A system under test: anything that can complete one job-issued I/O and
/// report its virtual completion time.
pub trait Workload {
    /// Issues `op` for `job` at `now`; returns the completion instant.
    fn issue(&mut self, now: SimTime, job: usize, op: &FioOp) -> Result<SimTime, String>;
}

struct JobState {
    rng: SimRng,
    cursor: u64,
}

impl JobState {
    fn next_op(&mut self, spec: &JobSpec) -> FioOp {
        let slots = (spec.region / spec.bs).max(1);
        let offset = if spec.rw.is_random() {
            self.rng.below(slots) * spec.bs
        } else {
            let off = self.cursor;
            self.cursor = (self.cursor + spec.bs) % (slots * spec.bs);
            off
        };
        FioOp {
            write: spec.rw.is_write(),
            offset,
            len: spec.bs,
        }
    }
}

/// Event: an op of `job` submitted at `submitted` completed.
struct Done {
    job: usize,
    submitted: SimTime,
    bytes: u64,
    failed: bool,
}

/// Runs `spec` against `workload` to completion and reports.
pub fn run_fio<W: Workload>(workload: &mut W, spec: &JobSpec) -> FioReport {
    let mut io = IoReport::new();
    let start = SimTime::ZERO;
    let measure_from = start + spec.ramp;
    let measure_to = measure_from + spec.runtime;
    io.meter.start(measure_from);
    io.meter.stop(measure_to);

    let root = SimRng::new(spec.seed);
    let mut jobs: Vec<JobState> = (0..spec.numjobs)
        .map(|j| JobState {
            rng: root.fork(j as u64),
            cursor: 0,
        })
        .collect();

    let mut queue: EventQueue<Done> = EventQueue::new();

    // Prime each job with `iodepth` outstanding ops.
    for (j, job) in jobs.iter_mut().enumerate() {
        for _ in 0..spec.iodepth {
            let op = job.next_op(spec);
            match workload.issue(start, j, &op) {
                Ok(done) => queue.push(
                    done,
                    Done {
                        job: j,
                        submitted: start,
                        bytes: op.len,
                        failed: false,
                    },
                ),
                Err(_) => queue.push(
                    start + SimDuration::from_micros(10),
                    Done {
                        job: j,
                        submitted: start,
                        bytes: 0,
                        failed: true,
                    },
                ),
            }
        }
    }

    // Closed loop: each completion records and triggers the next op.
    while let Some((now, done)) = queue.pop() {
        if done.failed {
            io.failure();
        } else {
            io.success(now, done.bytes, now.saturating_since(done.submitted));
        }
        if now >= measure_to {
            continue; // drain without resubmitting
        }
        let op = jobs[done.job].next_op(spec);
        match workload.issue(now, done.job, &op) {
            Ok(at) => queue.push(
                at,
                Done {
                    job: done.job,
                    submitted: now,
                    bytes: op.len,
                    failed: false,
                },
            ),
            Err(_) => queue.push(
                now + SimDuration::from_micros(10),
                Done {
                    job: done.job,
                    submitted: now,
                    bytes: 0,
                    failed: true,
                },
            ),
        }
    }

    FioReport {
        spec: spec.clone(),
        io,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_sim::ServerPool;

    /// A toy backend: a k-server queue with fixed service time.
    struct Toy {
        pool: ServerPool,
        service: SimDuration,
        issued: u64,
    }

    impl Workload for Toy {
        fn issue(&mut self, now: SimTime, _job: usize, _op: &FioOp) -> Result<SimTime, String> {
            self.issued += 1;
            Ok(self.pool.submit(now, self.service).finish)
        }
    }

    #[test]
    fn closed_loop_matches_littles_law() {
        // 4 servers, 100 us service, 1 job at QD 8: throughput = 4/100us
        // = 40 K ops/s (server-bound since QD > servers).
        let mut toy = Toy {
            pool: ServerPool::new(4),
            service: SimDuration::from_micros(100),
            issued: 0,
        };
        let spec = JobSpec::new(RwMode::Read, 4096, 1).iodepth(8);
        let rep = run_fio(&mut toy, &spec);
        let iops = rep.iops();
        assert!((iops - 40_000.0).abs() / 40_000.0 < 0.02, "iops {iops}");
        // Latency = queueing (2 rounds) at QD 8 over 4 servers.
        let p50 = rep.io.latency.percentile(0.5);
        assert!(p50 >= SimDuration::from_micros(190), "p50 {p50}");
    }

    #[test]
    fn concurrency_scales_until_servers_saturate() {
        let run = |jobs: usize| {
            let mut toy = Toy {
                pool: ServerPool::new(16),
                service: SimDuration::from_micros(50),
                issued: 0,
            };
            run_fio(&mut toy, &JobSpec::new(RwMode::Read, 4096, jobs).iodepth(1)).iops()
        };
        let one = run(1); // 1/50us = 20K
        let eight = run(8); // 8x
        let sixty_four = run(64); // capped at 16/50us = 320K
        assert!((one - 20_000.0).abs() / 20_000.0 < 0.02, "{one}");
        assert!((eight - 160_000.0).abs() / 160_000.0 < 0.02, "{eight}");
        assert!(
            (sixty_four - 320_000.0).abs() / 320_000.0 < 0.05,
            "{sixty_four}"
        );
    }

    #[test]
    fn sequential_offsets_advance_and_wrap() {
        let spec = JobSpec::new(RwMode::Read, 4096, 1).region(3 * 4096);
        let mut job = JobState {
            rng: SimRng::new(1),
            cursor: 0,
        };
        let offs: Vec<u64> = (0..5).map(|_| job.next_op(&spec).offset).collect();
        assert_eq!(offs, vec![0, 4096, 8192, 0, 4096]);
    }

    #[test]
    fn random_offsets_are_aligned_and_bounded() {
        let spec = JobSpec::new(RwMode::RandRead, 4096, 1).region(1 << 20);
        let mut job = JobState {
            rng: SimRng::new(2),
            cursor: 0,
        };
        for _ in 0..1000 {
            let op = job.next_op(&spec);
            assert_eq!(op.offset % 4096, 0);
            assert!(op.offset + 4096 <= 1 << 20);
            assert!(!op.write);
        }
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        struct Flaky {
            n: u64,
        }
        impl Workload for Flaky {
            fn issue(&mut self, now: SimTime, _j: usize, _op: &FioOp) -> Result<SimTime, String> {
                self.n += 1;
                if self.n.is_multiple_of(10) {
                    Err("injected".into())
                } else {
                    Ok(now + SimDuration::from_micros(20))
                }
            }
        }
        let rep = run_fio(&mut Flaky { n: 0 }, &JobSpec::new(RwMode::Read, 4096, 2));
        assert!(rep.io.errors.get() > 0);
        assert!(rep.iops() > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = || {
            let mut toy = Toy {
                pool: ServerPool::new(2),
                service: SimDuration::from_micros(33),
                issued: 0,
            };
            let r = run_fio(&mut toy, &JobSpec::new(RwMode::RandRead, 4096, 3).seed(77));
            (r.io.meter.ops(), r.io.latency.percentile(0.99).as_nanos())
        };
        assert_eq!(run(), run());
    }
}
