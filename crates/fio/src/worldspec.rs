//! The typed world builder: every DFS-family testbed is described by one
//! [`WorldSpec`] and assembled by a terminal `build_*` call.
//!
//! The old positional constructors (`ClusterFioWorld::new` took seven
//! bare arguments, `::offloaded` eight) made call sites unreadable and
//! could not grow a clients axis without another argument. The spec is
//! the single description of a world — transport, storage shape, client
//! placement(s), fabric seed — with defaults matching the historical
//! constructors exactly, so a spec that only names what a sweep varies
//! replays bit-identically to the constructor call it replaced:
//!
//! ```
//! use ros2_fio::{Clients, WorldSpec};
//! use ros2_hw::ClientPlacement;
//!
//! // The classic two-node world (client on host cores):
//! let world = WorldSpec::single(ClientPlacement::Host)
//!     .ssds(2)
//!     .jobs(2)
//!     .region(8 << 20)
//!     .build_dfs();
//! drop(world);
//!
//! // A 4-engine replicated cluster with 16 host clients incasting on it:
//! let incast = WorldSpec::cluster(4)
//!     .replication(2)
//!     .jobs(2)
//!     .clients(Clients::host(16))
//!     .pool_capacity(8)
//!     .build_incast();
//! drop(incast);
//! ```

use ros2_daos::{DaosClient, DaosCostModel, DaosEngine, EngineCluster};
use ros2_dpu::{default_control, DpuAgent, DpuClient, DpuTenantSpec};
use ros2_fabric::Fabric;
use ros2_hw::{ClientPlacement, ClusterTopology, CoreClass, Transport};
use ros2_nvme::DataMode;
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

use crate::incast::IncastFioWorld;
use crate::worlds::{ClusterFioWorld, DfsFioWorld, FioClient};

/// What runs the DAOS client stack on one client node.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClientKind {
    /// In-process `libdaos` on host x86 cores — the classic mode.
    Host,
    /// In-process client charged at BlueField-3 Arm-core costs: the
    /// historical "DPU placement" *cost-model* mode (the node spec and
    /// core class change, the architecture does not).
    DpuCostModel,
    /// The real offload: the whole client runs on the BlueField-3 as a
    /// [`DpuClient`] behind a host submit/poll doorbell pair.
    Offloaded,
}

impl ClientKind {
    /// The fabric node spec this kind of client needs.
    pub fn placement(self) -> ClientPlacement {
        match self {
            ClientKind::Host => ClientPlacement::Host,
            ClientKind::DpuCostModel | ClientKind::Offloaded => ClientPlacement::Dpu,
        }
    }
}

/// The clients axis of a [`WorldSpec`]: one [`ClientKind`] per client
/// node, in fabric-node order (client `c` is fabric node `c`).
#[derive(Clone, Debug)]
pub struct Clients {
    kinds: Vec<ClientKind>,
}

impl Clients {
    /// `n` host-resident clients.
    pub fn host(n: usize) -> Self {
        Clients {
            kinds: vec![ClientKind::Host; n],
        }
    }

    /// `n` DPU-cost-model clients (BlueField node specs, in-process
    /// clients charged at Arm-core costs).
    pub fn dpu(n: usize) -> Self {
        Clients {
            kinds: vec![ClientKind::DpuCostModel; n],
        }
    }

    /// `n` real offloaded clients — one [`DpuClient`] per BlueField node,
    /// each with its own agent, QoS admission, and (optionally) read
    /// cache. The incast axis for DPU-side experiments.
    pub fn offloaded(n: usize) -> Self {
        Clients {
            kinds: vec![ClientKind::Offloaded; n],
        }
    }

    /// A host/DPU mix: `hosts` host clients first, then `dpus`
    /// DPU-cost-model clients.
    pub fn mixed(hosts: usize, dpus: usize) -> Self {
        let mut kinds = vec![ClientKind::Host; hosts];
        kinds.extend(vec![ClientKind::DpuCostModel; dpus]);
        Clients { kinds }
    }

    /// The per-client kinds, in node order.
    pub fn kinds(&self) -> &[ClientKind] {
        &self.kinds
    }

    /// Number of client nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the axis is empty (rejected at build time).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

/// The typed builder describing one DFS-family world. See the module
/// docs; construct with [`WorldSpec::single`] or [`WorldSpec::cluster`],
/// refine with the chainable setters, assemble with a `build_*` terminal.
#[derive(Clone, Debug)]
pub struct WorldSpec {
    transport: Transport,
    engines: usize,
    clustered: bool,
    replication: usize,
    ssds: usize,
    jobs: usize,
    region: u64,
    mode: DataMode,
    seed: u64,
    clients: Clients,
    tenants: Vec<DpuTenantSpec>,
    wire_per_segment: bool,
    pool_capacity: Option<usize>,
    dpu_cache: Option<u64>,
}

impl WorldSpec {
    /// The fabric seed every historical world hardcoded. Still the
    /// default — override with [`Self::seed`].
    pub const DEFAULT_SEED: u64 = 0xd0e5;

    fn base(engines: usize, clustered: bool, clients: Clients) -> Self {
        WorldSpec {
            transport: Transport::Rdma,
            engines,
            clustered,
            replication: 1,
            ssds: 1,
            jobs: 1,
            region: 4 << 20,
            mode: DataMode::Stored,
            seed: Self::DEFAULT_SEED,
            clients,
            tenants: vec![DpuTenantSpec::unlimited("fio")],
            wire_per_segment: false,
            pool_capacity: None,
            dpu_cache: None,
        }
    }

    /// The classic two-node world: one client of `placement`, one storage
    /// server. `ClientPlacement::Dpu` selects the historical cost-model
    /// mode; use [`Self::offload`] for the real offloaded client.
    /// Terminal: [`Self::build_dfs`].
    pub fn single(placement: ClientPlacement) -> Self {
        let kind = match placement {
            ClientPlacement::Host => ClientKind::Host,
            ClientPlacement::Dpu => ClientKind::DpuCostModel,
        };
        Self::base(1, false, Clients { kinds: vec![kind] })
    }

    /// An N-engine replicated cluster (one storage server per engine)
    /// with, by default, one host client. Terminals: [`Self::build`]
    /// (single client) or [`Self::build_incast`] (the clients axis).
    pub fn cluster(engines: usize) -> Self {
        Self::base(engines, true, Clients::host(1))
    }

    /// Data-plane transport (default RDMA).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Replication factor across engines (default 1).
    pub fn replication(mut self, rf: usize) -> Self {
        self.replication = rf;
        self
    }

    /// NVMe drives per storage server (default 1).
    pub fn ssds(mut self, ssds: usize) -> Self {
        self.ssds = ssds;
        self
    }

    /// FIO jobs **per client** (default 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Preconditioned bytes per job file (default 4 MiB).
    pub fn region(mut self, region: u64) -> Self {
        self.region = region;
        self
    }

    /// Drive payload mode (default [`DataMode::Stored`]).
    pub fn mode(mut self, mode: DataMode) -> Self {
        self.mode = mode;
        self
    }

    /// Fabric seed (default [`Self::DEFAULT_SEED`], the historical
    /// hardcoded value). Offloaded clients derive their control-plane and
    /// agent seeds from the same value.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The clients axis for incast worlds (default one host client).
    pub fn clients(mut self, clients: Clients) -> Self {
        self.clients = clients;
        self
    }

    /// Runs the single client as the real DPU offload (a [`DpuClient`]
    /// on a BlueField node) with `tenants` sharing its QoS admission.
    pub fn offload(mut self, tenants: Vec<DpuTenantSpec>) -> Self {
        self.clients = Clients {
            kinds: vec![ClientKind::Offloaded],
        };
        self.tenants = tenants;
        self
    }

    /// Enables the DPU read cache on the offloaded client: `bytes` of the
    /// agent's DRAM pool are carved away from staging and split across the
    /// tenant lanes (default: disabled — every pinned baseline runs
    /// cache-off). Only meaningful with [`Self::offload`]; the build
    /// terminals reject it on in-process clients.
    pub fn dpu_cache(mut self, bytes: u64) -> Self {
        self.dpu_cache = Some(bytes);
        self
    }

    /// Forces per-segment wire booking from construction onward (the
    /// `perf_regression` A/B switch; simulated results are identical).
    pub fn wire_per_segment(mut self, on: bool) -> Self {
        self.wire_per_segment = on;
        self
    }

    /// Engine-side connection-pool capacity for incast worlds (default:
    /// 64, clamped to the client count when smaller).
    pub fn pool_capacity(mut self, capacity: usize) -> Self {
        self.pool_capacity = Some(capacity);
        self
    }

    // ------------------------------------------------------ accessors --

    /// Jobs per client.
    pub fn jobs_per_client(&self) -> usize {
        self.jobs
    }

    /// The clients axis.
    pub fn client_axis(&self) -> &Clients {
        &self.clients
    }

    pub(crate) fn engines_value(&self) -> usize {
        self.engines
    }

    pub(crate) fn replication_value(&self) -> usize {
        self.replication
    }

    pub(crate) fn region_value(&self) -> u64 {
        self.region
    }

    pub(crate) fn seed_value(&self) -> u64 {
        self.seed
    }

    pub(crate) fn tenants_value(&self) -> &[DpuTenantSpec] {
        &self.tenants
    }

    pub(crate) fn dpu_cache_value(&self) -> Option<u64> {
        self.dpu_cache
    }

    /// The pool capacity an incast build installs: the explicit setting,
    /// else 64 clamped to the client count.
    pub(crate) fn effective_pool_capacity(&self) -> usize {
        self.pool_capacity
            .unwrap_or_else(|| 64.min(self.clients.len().max(1)))
    }

    // ------------------------------------------------------ terminals --

    /// Assembles the classic two-node [`DfsFioWorld`]. Panics if this
    /// spec describes a cluster or more than one client.
    pub fn build_dfs(self) -> DfsFioWorld {
        assert!(
            !self.clustered,
            "a cluster spec builds with build()/build_incast()"
        );
        assert_eq!(self.clients.len(), 1, "a single world has one client");
        let kind = self.clients.kinds[0];
        assert!(
            self.dpu_cache.is_none() || kind == ClientKind::Offloaded,
            "dpu_cache() requires offload()"
        );
        let mut fabric = Fabric::for_topology(
            self.transport,
            &ClusterTopology::single(kind.placement()),
            self.seed,
        );
        fabric.set_force_per_segment(self.wire_per_segment);
        fabric.set_flow_hint(NodeId(0), self.jobs);
        fabric.set_flow_hint(NodeId(1), self.jobs);

        let bdevs = BdevLayer::new(ros2_nvme::NvmeArray::new(
            ros2_hw::NvmeModel::enterprise_1600(),
            self.ssds,
            self.mode,
        ));
        let mut engine = DaosEngine::new(
            "pool0",
            bdevs,
            2 << 30,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        engine.cont_create("posix").unwrap();

        let client = match kind {
            ClientKind::Host | ClientKind::DpuCostModel => FioClient::Classic(
                DaosClient::connect(
                    &mut fabric,
                    NodeId(0),
                    NodeId(1),
                    "fio",
                    "posix",
                    self.jobs,
                    4 << 20,
                    MemoryDomain::HostDram,
                    DaosCostModel::default_model(),
                )
                .expect("client connects"),
            ),
            ClientKind::Offloaded => {
                let agent = DpuAgent::new(NodeId(0), 30 << 30, default_control(self.seed));
                let mut dpu = DpuClient::connect(
                    &mut fabric,
                    NodeId(0),
                    NodeId(1),
                    "posix",
                    self.jobs,
                    4 << 20,
                    MemoryDomain::DpuDram,
                    DaosCostModel::default_model(),
                    agent,
                    self.tenants,
                    self.seed,
                )
                .expect("DPU client connects");
                if let Some(bytes) = self.dpu_cache {
                    dpu.enable_read_cache(bytes).expect("cache carve fits DRAM");
                }
                FioClient::Offloaded(dpu)
            }
        };

        DfsFioWorld::precondition(
            fabric,
            EngineCluster::single(engine),
            client,
            self.jobs,
            self.region,
        )
    }

    /// Assembles the N-engine [`ClusterFioWorld`] with its single client.
    /// Panics if this spec is not a cluster or carries a clients axis —
    /// multi-client specs build with [`Self::build_incast`].
    pub fn build(self) -> ClusterFioWorld {
        assert!(self.clustered, "a single spec builds with build_dfs()");
        assert_eq!(
            self.clients.len(),
            1,
            "a multi-client spec builds with build_incast()"
        );
        let kind = self.clients.kinds[0];
        assert!(
            self.dpu_cache.is_none() || kind == ClientKind::Offloaded,
            "dpu_cache() requires offload()"
        );
        let topology = ClusterTopology::one_client(kind.placement(), self.engines);
        let (mut fabric, cluster, storage_nodes) = self.fabric_and_cluster(&topology);
        let client = match kind {
            ClientKind::Host | ClientKind::DpuCostModel => FioClient::Classic(
                DaosClient::connect_multi(
                    &mut fabric,
                    NodeId(0),
                    &storage_nodes,
                    "fio",
                    "posix",
                    self.jobs,
                    4 << 20,
                    MemoryDomain::HostDram,
                    DaosCostModel::default_model(),
                )
                .expect("cluster client connects"),
            ),
            ClientKind::Offloaded => {
                let agent = DpuAgent::new(NodeId(0), 30 << 30, default_control(self.seed));
                let mut dpu = DpuClient::connect_cluster(
                    &mut fabric,
                    NodeId(0),
                    &storage_nodes,
                    "posix",
                    self.jobs,
                    4 << 20,
                    MemoryDomain::DpuDram,
                    DaosCostModel::default_model(),
                    agent,
                    self.tenants.clone(),
                    self.seed,
                )
                .expect("offloaded cluster client connects");
                if let Some(bytes) = self.dpu_cache {
                    dpu.enable_read_cache(bytes).expect("cache carve fits DRAM");
                }
                FioClient::Offloaded(dpu)
            }
        };
        ClusterFioWorld::from_world(DfsFioWorld::precondition(
            fabric,
            cluster,
            client,
            self.jobs,
            self.region,
        ))
    }

    /// Assembles the multi-client incast world: one client stack per
    /// entry of the clients axis fanning into the shared cluster, served
    /// through the engine-side connection pool. `Host` and `DpuCostModel`
    /// entries run in-process clients; `Offloaded` entries run a real
    /// [`DpuClient`] per BlueField node (with its own agent and, if
    /// [`Self::dpu_cache`] is set, its own read-cache carve). Panics if
    /// this spec is not a cluster, the axis is empty, or a cache carve is
    /// requested without any offloaded client.
    pub fn build_incast(self) -> IncastFioWorld {
        assert!(self.clustered, "incast worlds are cluster-shaped");
        assert!(!self.clients.is_empty(), "incast needs at least one client");
        assert!(
            self.dpu_cache.is_none() || self.clients.kinds().contains(&ClientKind::Offloaded),
            "dpu_cache() requires offloaded clients (Clients::offloaded)"
        );
        IncastFioWorld::build(self)
    }

    /// Shared cluster assembly: fabric over `topology` with per-node flow
    /// hints, the engine pool with its `posix` container created (before
    /// any client connects, preserving the historical order), and the
    /// storage node ids.
    pub(crate) fn fabric_and_cluster(
        &self,
        topology: &ClusterTopology,
    ) -> (Fabric, EngineCluster, Vec<NodeId>) {
        let mut fabric = Fabric::for_topology(self.transport, topology, self.seed);
        fabric.set_force_per_segment(self.wire_per_segment);
        for node in 0..topology.node_count() {
            fabric.set_flow_hint(NodeId(node as u32), self.jobs);
        }
        let storage_nodes: Vec<NodeId> = (0..self.engines)
            .map(|i| NodeId(topology.storage_node(i) as u32))
            .collect();
        let mut cluster = EngineCluster::assemble(
            storage_nodes.clone(),
            self.replication,
            self.ssds,
            self.mode,
            2 << 30,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        cluster.cont_create("posix").unwrap();
        (fabric, cluster, storage_nodes)
    }
}
