//! The multi-client incast world: N independent DAOS clients fanning
//! into one replicated cluster through the shared switch — the
//! deployment shape where storage-port congestion, per-client fairness,
//! and engine-side connection state become the story.
//!
//! Three mechanisms distinguish this world from [`ClusterFioWorld`]:
//!
//! * **the clients axis** — one fabric node and one in-process
//!   [`DaosClient`] per entry of the spec's [`Clients`](crate::Clients)
//!   axis, each running its own FIO job group (global job `j` belongs to
//!   client `j / jobs_per_client`);
//! * **the engine-side connection pool** — the cluster admits every op
//!   through an LRU pool bounding resident per-client session state at
//!   O(capacity); non-resident clients pay a handshake before the op
//!   starts (see `ros2_daos::conn_pool`);
//! * **RAS push distribution** — a membership change is encoded **once**
//!   as a `MapPush` control frame and fanned out to every subscribed
//!   client as a delayed delivery (`ras_delay` plus a per-client
//!   serialization gap), instead of N per-client `MapQuery` pulls. Each
//!   client's cached map applies the push at its next poll, so clients
//!   genuinely race the new revision at different instants.

use ros2_core::FaultPlan;
use ros2_ctl::ControlRequest;
use ros2_daos::{
    ConnPool, ConnPoolStats, DaosClient, DaosCostModel, EngineCluster, MapSnapshot, RetryStats,
};
use ros2_dfs::{Dfs, DfsObj, DfsSession};
use ros2_fabric::Fabric;
use ros2_hw::ClusterTopology;
use ros2_sim::{ResourceStats, SimDuration, SimTime};
use ros2_verbs::{MemoryDomain, NodeId};

use ros2_dpu::{default_control, DpuAgent, DpuCacheStats, DpuClient};

use crate::driver::{FioOp, Workload};
use crate::worlds::FioClient;
use crate::worldspec::{ClientKind, WorldSpec};

/// The assembled incast testbed. Build with
/// [`WorldSpec::build_incast`]; drive with [`crate::run_fio`] over
/// `clients × jobs_per_client` total jobs.
pub struct IncastFioWorld {
    /// The data-plane fabric (clients 0..C-1, storage C..C+E-1).
    pub fabric: Fabric,
    /// The shared replicated cluster (connection pool enabled).
    pub cluster: EngineCluster,
    /// One in-process client stack per client node.
    pub clients: Vec<FioClient>,
    /// The shared mounted namespace.
    pub dfs: Dfs,
    /// Preconditioned files, indexed by **global** job.
    files: Vec<DfsObj>,
    /// FIO jobs per client.
    jobs_per_client: usize,
    /// Slot-aligned storage node ids (the receiver-known half of a push).
    storage_nodes: Vec<NodeId>,
    /// Pool replication factor (the other receiver-known half).
    rf: usize,
    /// Per-client serialization gap of one push fan-out.
    push_gap: SimDuration,
    faults: FaultPlan,
    next_kill: usize,
}

impl IncastFioWorld {
    /// Default gap between consecutive per-client deliveries of one push
    /// fan-out: the control plane serializes the frame onto each
    /// subscriber connection.
    pub const DEFAULT_PUSH_GAP: SimDuration = SimDuration::from_micros(1);

    /// Assembles the world a multi-client [`WorldSpec`] describes.
    pub(crate) fn build(spec: WorldSpec) -> Self {
        let topology = ClusterTopology {
            clients: spec
                .client_axis()
                .kinds()
                .iter()
                .map(|k| k.placement())
                .collect(),
            storage_nodes: spec.engines_value(),
        };
        let (mut fabric, mut cluster, storage_nodes) = spec.fabric_and_cluster(&topology);
        let jobs = spec.jobs_per_client();
        let n_clients = topology.client_count();
        // Storage ports carry the whole incast; clients only their group.
        for &node in &storage_nodes {
            fabric.set_flow_hint(node, jobs * n_clients);
        }

        let kinds = spec.client_axis().kinds().to_vec();
        let mut clients: Vec<FioClient> = kinds
            .iter()
            .enumerate()
            .map(|(c, kind)| match kind {
                ClientKind::Host | ClientKind::DpuCostModel => FioClient::Classic(
                    DaosClient::connect_multi(
                        &mut fabric,
                        NodeId(c as u32),
                        &storage_nodes,
                        "fio",
                        "posix",
                        jobs,
                        4 << 20,
                        MemoryDomain::HostDram,
                        DaosCostModel::default_model(),
                    )
                    .expect("incast client connects"),
                ),
                ClientKind::Offloaded => {
                    // One agent per BlueField node; seeds diverge per
                    // client so control-plane jitter is not lockstepped.
                    let agent = DpuAgent::new(
                        NodeId(c as u32),
                        30 << 30,
                        default_control(spec.seed_value() ^ c as u64),
                    );
                    let mut dpu = DpuClient::connect_cluster(
                        &mut fabric,
                        NodeId(c as u32),
                        &storage_nodes,
                        "posix",
                        jobs,
                        4 << 20,
                        MemoryDomain::DpuDram,
                        DaosCostModel::default_model(),
                        agent,
                        spec.tenants_value().to_vec(),
                        spec.seed_value() ^ c as u64,
                    )
                    .expect("incast DPU client connects");
                    if let Some(bytes) = spec.dpu_cache_value() {
                        dpu.enable_read_cache(bytes).expect("cache carve fits DRAM");
                    }
                    FioClient::Offloaded(dpu)
                }
            })
            .collect();

        // Client 0 formats; every client preconditions its own job files
        // (named per client so the shared namespace never collides).
        let chunk = 1u64 << 20;
        let region = spec.region_value();
        let (mut dfs, mut t) = {
            let mut s = DfsSession {
                fabric: &mut fabric,
                cluster: &mut cluster,
                client: clients[0].as_object(),
            };
            Dfs::format(&mut s, SimTime::ZERO, chunk).expect("format")
        };
        let root = dfs.root();
        let mut files = Vec::with_capacity(n_clients * jobs);
        for (c, client) in clients.iter_mut().enumerate() {
            for l in 0..jobs {
                let mut s = DfsSession {
                    fabric: &mut fabric,
                    cluster: &mut cluster,
                    client: client.as_object(),
                };
                let (mut f, t1) = dfs
                    .create(&mut s, t, &root, &format!("c{c}j{l}"), 0o644)
                    .expect("create");
                t = t1;
                let mut off = 0u64;
                while off < region {
                    let piece = chunk.min(region - off);
                    t = dfs
                        .write(
                            &mut s,
                            t,
                            l,
                            &mut f,
                            off,
                            crate::worlds::zeros(piece as usize),
                        )
                        .expect("precondition write");
                    off += piece;
                }
                files.push(f);
            }
        }

        fabric.reset_timing();
        cluster.reset_timing();
        for client in &mut clients {
            client.reset_timing();
        }
        cluster.enable_conn_pool(spec.effective_pool_capacity(), ConnPool::DEFAULT_HANDSHAKE);

        IncastFioWorld {
            fabric,
            cluster,
            clients,
            dfs,
            files,
            jobs_per_client: jobs,
            storage_nodes,
            rf: spec.replication_value(),
            push_gap: Self::DEFAULT_PUSH_GAP,
            faults: FaultPlan::none(),
            next_kill: 0,
        }
    }

    /// Number of client nodes.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// FIO jobs per client (total jobs = `client_count × jobs_per_client`).
    pub fn jobs_per_client(&self) -> usize {
        self.jobs_per_client
    }

    /// Total FIO jobs across all clients.
    pub fn total_jobs(&self) -> usize {
        self.clients.len() * self.jobs_per_client
    }

    /// Data-plane ops issued by each client, in node order.
    pub fn per_client_ops(&self) -> Vec<u64> {
        self.clients.iter().map(|c| c.ops()).collect()
    }

    /// Total data-plane ops across all clients.
    pub fn total_ops(&self) -> u64 {
        self.clients.iter().map(|c| c.ops()).sum()
    }

    /// Read-cache counters merged across every offloaded client (all
    /// zeros when the axis is classic or the cache is off).
    pub fn cache_stats(&self) -> DpuCacheStats {
        let mut out = DpuCacheStats::default();
        for c in &self.clients {
            out.merge(c.cache_stats());
        }
        out
    }

    /// Connection-pool counters.
    pub fn conn_pool_stats(&self) -> ConnPoolStats {
        self.cluster.conn_pool_stats()
    }

    /// Recovery-ladder counters merged across every client.
    pub fn retry_stats(&self) -> RetryStats {
        let mut out = RetryStats::default();
        for c in &self.clients {
            out.merge(c.retry_stats());
        }
        out
    }

    /// Total stale-map fences observed across the cluster's engines.
    pub fn fences(&self) -> u64 {
        self.cluster.fences()
    }

    /// Aggregate booking / fast-path counters over fabric, cluster, and
    /// every client stack.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut stats = self.fabric.resource_stats();
        stats.merge(self.cluster.resource_stats());
        for c in &self.clients {
            stats.merge(c.resource_stats());
        }
        stats
    }

    /// Routes data I/O through every client's submission/completion ring
    /// (`iodepth > 1`); the pipelined path carries the stale-map retry
    /// ladder, so kill cells must run pipelined.
    pub fn set_pipelined(&mut self, on: bool) {
        self.dfs.set_data_pipeline(on);
    }

    /// Sets the per-client serialization gap of a push fan-out.
    pub fn set_push_gap(&mut self, gap: SimDuration) {
        self.push_gap = gap;
    }

    /// Installs a chaos schedule (kills armed against the **total**
    /// client-op counter; black holes and stalls apply immediately).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for &slot in &plan.blackholes {
            self.cluster.set_blackhole(slot, true);
        }
        for stall in &plan.stalls {
            self.cluster.set_stall(stall.slot, stall.extra);
        }
        self.faults = plan;
        self.next_kill = 0;
    }

    /// One RAS push fan-out: encodes the current map as a `MapPush` frame
    /// **once**, then schedules a delayed delivery to every client —
    /// client `c` receives it at `at + c × push_gap` and applies it at
    /// its next map poll. This is the control plane's push analogue of N
    /// per-client `MapQuery` round-trips.
    pub fn push_map(&mut self, at: SimTime) {
        let frame = self.cluster.ras_push().encode();
        for (c, client) in self.clients.iter_mut().enumerate() {
            let snap = match ControlRequest::decode(frame.clone()).expect("self-encoded frame") {
                ControlRequest::MapPush {
                    version,
                    healths,
                    pending_dead,
                } => MapSnapshot::from_wire(
                    &self.storage_nodes,
                    self.rf,
                    version,
                    &healths,
                    pending_dead,
                ),
                other => unreachable!("ras_push encodes MapPush, got {other:?}"),
            };
            client.deliver_map(at + self.push_gap * c as u64, snap);
        }
    }

    /// Kills engine `slot` and fans the new map out to every client via
    /// [`Self::push_map`], `ras_delay` after `now`.
    pub fn kill_engine(&mut self, now: SimTime, slot: usize) -> Result<u64, String> {
        let version = self
            .cluster
            .kill_engine(slot)
            .map_err(|e| format!("{e:?}"))?;
        self.push_map(now + self.faults.ras_delay);
        Ok(version)
    }

    /// Runs the online rebuild at `now`; the completion map revision is
    /// pushed to every client `ras_delay` after the completion instant.
    pub fn rebuild(&mut self, now: SimTime) -> Result<SimTime, String> {
        let t = self
            .cluster
            .rebuild(&mut self.fabric, now)
            .map_err(|e| format!("{e:?}"))?;
        self.push_map(t + self.faults.ras_delay);
        Ok(t)
    }

    /// Fires any armed kills whose total-op threshold has been crossed.
    fn fire_due_kills(&mut self, now: SimTime) -> Result<(), String> {
        while self.next_kill < self.faults.kills.len() {
            let kill = self.faults.kills[self.next_kill];
            if self.total_ops() < kill.after_client_ops {
                break;
            }
            self.next_kill += 1;
            self.cluster
                .kill_engine(kill.slot)
                .map_err(|e| format!("{e:?}"))?;
            self.push_map(now + self.faults.ras_delay);
        }
        Ok(())
    }

    /// The preconditioned file handle for a **global** job index.
    pub fn file(&self, job: usize) -> &DfsObj {
        &self.files[job]
    }
}

impl Workload for IncastFioWorld {
    fn issue(&mut self, now: SimTime, job: usize, op: &FioOp) -> Result<SimTime, String> {
        self.fire_due_kills(now)?;
        let c = job / self.jobs_per_client;
        let l = job % self.jobs_per_client;
        // Engine-side admission: a non-resident client re-handshakes
        // before its op starts.
        let start = self.cluster.pool_admit(NodeId(c as u32), now);
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: self.clients[c].as_object(),
        };
        if op.write {
            let data = crate::worlds::zeros(op.len as usize);
            self.dfs
                .write(&mut s, start, l, &mut self.files[job], op.offset, data)
                .map_err(|e| format!("{e:?}"))
        } else {
            self.dfs
                .read(&mut s, start, l, &self.files[job], op.offset, op.len)
                .map(|(_, at)| at)
                .map_err(|e| format!("{e:?}"))
        }
    }
}
