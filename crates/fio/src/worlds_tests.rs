//! Tests for the three assembled benchmark worlds.

use ros2_hw::{ClientPlacement, Transport};
use ros2_nvme::DataMode;
use ros2_sim::{SimDuration, SimTime};

use crate::driver::{run_fio, FioOp, Workload};
use crate::spec::{JobSpec, RwMode};
use crate::worlds::{DfsFioWorld, LocalFioWorld, SpdkFioWorld};

fn quick(s: JobSpec) -> JobSpec {
    s.windows(SimDuration::from_millis(20), SimDuration::from_millis(80))
}

#[test]
fn local_world_routes_jobs_round_robin_over_devices() {
    let mut w = LocalFioWorld::new(2, 4, 64 << 20, DataMode::Stored);
    for job in 0..4usize {
        w.issue(
            SimTime::ZERO,
            job,
            &FioOp {
                write: true,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    }
    // Jobs 0,2 hit device 0; jobs 1,3 hit device 1.
    assert_eq!(w.array().device(0).stats().writes, 2);
    assert_eq!(w.array().device(1).stats().writes, 2);
}

#[test]
fn local_world_jobs_on_same_device_use_disjoint_regions() {
    let mut w = LocalFioWorld::new(1, 2, 1 << 20, DataMode::Stored);
    // Both jobs write at their offset 0; the lanes must not collide.
    for job in 0..2usize {
        w.issue(
            SimTime::ZERO,
            job,
            &FioOp {
                write: true,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    }
    let stats = w.array().device(0).stats().clone();
    assert_eq!(stats.writes, 2);
    // Two distinct LBAs were written (1 MiB lane stride = LBA 256).
    assert_eq!(stats.bytes_written, 8192);
}

#[test]
fn local_world_runs_the_driver_end_to_end() {
    let mut w = LocalFioWorld::new(1, 2, 256 << 20, DataMode::Null);
    let r = run_fio(&mut w, &quick(JobSpec::new(RwMode::RandRead, 4096, 2)));
    assert!(r.iops() > 50_000.0, "{}", r.summary());
    assert_eq!(r.io.errors.get(), 0);
}

#[test]
fn spdk_world_reads_what_it_wrote() {
    let mut w = SpdkFioWorld::new(Transport::Rdma, 4, 4, 2, 64 << 20, DataMode::Stored);
    let done = w
        .issue(
            SimTime::ZERO,
            1,
            &FioOp {
                write: true,
                offset: 8192,
                len: 4096,
            },
        )
        .unwrap();
    let done2 = w
        .issue(
            done,
            1,
            &FioOp {
                write: false,
                offset: 8192,
                len: 4096,
            },
        )
        .unwrap();
    assert!(done2 > done);
}

#[test]
fn spdk_world_per_job_regions_do_not_overlap() {
    // Job regions are laid out consecutively on the single bdev; writing
    // job 0's offset 0 and job 1's offset 0 lands on different LBAs.
    let mut w = SpdkFioWorld::new(Transport::Tcp, 2, 2, 2, 1 << 20, DataMode::Stored);
    for job in 0..2usize {
        w.issue(
            SimTime::ZERO,
            job,
            &FioOp {
                write: true,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    }
    // Both writes persisted (no overwrite of the same LBA would still show
    // 2 writes, but byte accounting plus region math is what we assert).
    assert!(w
        .issue(
            SimTime::from_secs(1),
            0,
            &FioOp {
                write: false,
                offset: 0,
                len: 4096
            }
        )
        .is_ok());
}

#[test]
fn dfs_world_preconditions_real_extents() {
    let mut w = DfsFioWorld::new(
        Transport::Rdma,
        ClientPlacement::Host,
        1,
        2,
        8 << 20,
        DataMode::Stored,
    );
    assert_eq!(w.file(0).size, 8 << 20);
    assert_eq!(w.file(1).size, 8 << 20);
    // Measured random reads hit real (non-hole) extents: the engine's VOS
    // recorded one extent per chunk per file.
    let stats = w.engine.vos_stats();
    assert!(stats.array_updates >= 16, "{stats:?}");
    // And a read through the world works at t=0 after the clock reset.
    let done = w
        .issue(
            SimTime::ZERO,
            0,
            &FioOp {
                write: false,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    assert!(done > SimTime::ZERO);
}

#[test]
fn dfs_world_clock_reset_measures_from_zero() {
    // Preconditioning consumed seconds of virtual time; the first measured
    // op must still see an idle system (latency ~ the clean-path RTT, far
    // below a queued-behind-preconditioning value).
    let mut w = DfsFioWorld::new(
        Transport::Rdma,
        ClientPlacement::Host,
        1,
        1,
        32 << 20,
        DataMode::Null,
    );
    let done = w
        .issue(
            SimTime::ZERO,
            0,
            &FioOp {
                write: false,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    assert!(
        done < SimTime::from_millis(1),
        "first op must not queue behind preconditioning: {done}"
    );
}

#[test]
fn dfs_world_runs_all_four_patterns() {
    for rw in RwMode::ALL {
        let mut w = DfsFioWorld::new(
            Transport::Tcp,
            ClientPlacement::Host,
            1,
            2,
            32 << 20,
            DataMode::Null,
        );
        let r = run_fio(&mut w, &quick(JobSpec::new(rw, 4096, 2).region(32 << 20)));
        assert!(r.iops() > 1000.0, "{:?}: {}", rw, r.summary());
        assert_eq!(r.io.errors.get(), 0, "{rw:?}");
    }
}
