//! Tests for the three assembled benchmark worlds.

use ros2_hw::{ClientPlacement, Transport};
use ros2_nvme::DataMode;
use ros2_sim::{SimDuration, SimTime};

use crate::driver::{run_fio, FioOp, Workload};
use crate::spec::{JobSpec, RwMode};
use crate::worlds::{LocalFioWorld, SpdkFioWorld};
use crate::worldspec::WorldSpec;

fn quick(s: JobSpec) -> JobSpec {
    s.windows(SimDuration::from_millis(20), SimDuration::from_millis(80))
}

#[test]
fn cluster_world_engages_multiple_engines_and_outruns_one() {
    let run = |engines: usize| {
        let mut w = WorldSpec::cluster(engines)
            .jobs(8)
            .region(8 << 20)
            .mode(DataMode::Null)
            .build();
        let r = run_fio(
            &mut w,
            &quick(
                JobSpec::new(RwMode::Read, 1 << 20, 8)
                    .iodepth(4)
                    .region(8 << 20),
            ),
        );
        assert_eq!(r.io.errors.get(), 0, "{engines} engines: failed ops");
        let engaged = (0..w.world.cluster.len())
            .filter(|&s| w.world.cluster.engine(s).rpcs() > 0)
            .count();
        (r.gib_per_sec(), engaged)
    };
    let (one, _) = run(1);
    let (four, engaged) = run(4);
    assert!(
        engaged >= 3,
        "files must spread across engines ({engaged}/4)"
    );
    assert!(
        four > one * 1.3,
        "4 drive-bound engines must outrun 1 ({four:.2} vs {one:.2} GiB/s)"
    );
}

#[test]
fn cluster_world_rf2_kill_serves_degraded_then_rebuilds() {
    let mut w = WorldSpec::cluster(3).replication(2).jobs(4).build();
    let spec = quick(
        JobSpec::new(RwMode::Read, 1 << 20, 4)
            .iodepth(2)
            .region(4 << 20),
    );
    let victim = w
        .world
        .cluster
        .route_update(&w.file(0).oid)
        .leader()
        .unwrap();
    w.kill_engine(victim).unwrap();
    w.reset_timing();
    let degraded = run_fio(&mut w, &spec);
    assert_eq!(degraded.io.errors.get(), 0, "degraded reads must not fail");
    assert!(w.rebuild_stats().degraded_fetches > 0);
    w.reset_timing();
    w.rebuild(SimTime::ZERO).unwrap();
    assert!(w.rebuild_stats().objects_moved > 0);
    w.reset_timing();
    let recovered = run_fio(&mut w, &spec);
    assert_eq!(
        recovered.io.errors.get(),
        0,
        "post-rebuild reads must not fail"
    );
}

#[test]
fn local_world_routes_jobs_round_robin_over_devices() {
    let mut w = LocalFioWorld::new(2, 4, 64 << 20, DataMode::Stored);
    for job in 0..4usize {
        w.issue(
            SimTime::ZERO,
            job,
            &FioOp {
                write: true,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    }
    // Jobs 0,2 hit device 0; jobs 1,3 hit device 1.
    assert_eq!(w.array().device(0).stats().writes, 2);
    assert_eq!(w.array().device(1).stats().writes, 2);
}

#[test]
fn local_world_jobs_on_same_device_use_disjoint_regions() {
    let mut w = LocalFioWorld::new(1, 2, 1 << 20, DataMode::Stored);
    // Both jobs write at their offset 0; the lanes must not collide.
    for job in 0..2usize {
        w.issue(
            SimTime::ZERO,
            job,
            &FioOp {
                write: true,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    }
    let stats = w.array().device(0).stats().clone();
    assert_eq!(stats.writes, 2);
    // Two distinct LBAs were written (1 MiB lane stride = LBA 256).
    assert_eq!(stats.bytes_written, 8192);
}

#[test]
fn local_world_runs_the_driver_end_to_end() {
    let mut w = LocalFioWorld::new(1, 2, 256 << 20, DataMode::Null);
    let r = run_fio(&mut w, &quick(JobSpec::new(RwMode::RandRead, 4096, 2)));
    assert!(r.iops() > 50_000.0, "{}", r.summary());
    assert_eq!(r.io.errors.get(), 0);
}

#[test]
fn spdk_world_reads_what_it_wrote() {
    let mut w = SpdkFioWorld::new(Transport::Rdma, 4, 4, 2, 64 << 20, DataMode::Stored);
    let done = w
        .issue(
            SimTime::ZERO,
            1,
            &FioOp {
                write: true,
                offset: 8192,
                len: 4096,
            },
        )
        .unwrap();
    let done2 = w
        .issue(
            done,
            1,
            &FioOp {
                write: false,
                offset: 8192,
                len: 4096,
            },
        )
        .unwrap();
    assert!(done2 > done);
}

#[test]
fn spdk_world_per_job_regions_do_not_overlap() {
    // Job regions are laid out consecutively on the single bdev; writing
    // job 0's offset 0 and job 1's offset 0 lands on different LBAs.
    let mut w = SpdkFioWorld::new(Transport::Tcp, 2, 2, 2, 1 << 20, DataMode::Stored);
    for job in 0..2usize {
        w.issue(
            SimTime::ZERO,
            job,
            &FioOp {
                write: true,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    }
    // Both writes persisted (no overwrite of the same LBA would still show
    // 2 writes, but byte accounting plus region math is what we assert).
    assert!(w
        .issue(
            SimTime::from_secs(1),
            0,
            &FioOp {
                write: false,
                offset: 0,
                len: 4096
            }
        )
        .is_ok());
}

#[test]
fn dfs_world_preconditions_real_extents() {
    let mut w = WorldSpec::single(ClientPlacement::Host)
        .jobs(2)
        .region(8 << 20)
        .build_dfs();
    assert_eq!(w.file(0).size, 8 << 20);
    assert_eq!(w.file(1).size, 8 << 20);
    // Measured random reads hit real (non-hole) extents: the engine's VOS
    // recorded one extent per chunk per file.
    let stats = w.cluster.vos_stats();
    assert!(stats.array_updates >= 16, "{stats:?}");
    // And a read through the world works at t=0 after the clock reset.
    let done = w
        .issue(
            SimTime::ZERO,
            0,
            &FioOp {
                write: false,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    assert!(done > SimTime::ZERO);
}

#[test]
fn dfs_world_clock_reset_measures_from_zero() {
    // Preconditioning consumed seconds of virtual time; the first measured
    // op must still see an idle system (latency ~ the clean-path RTT, far
    // below a queued-behind-preconditioning value).
    let mut w = WorldSpec::single(ClientPlacement::Host)
        .region(32 << 20)
        .mode(DataMode::Null)
        .build_dfs();
    let done = w
        .issue(
            SimTime::ZERO,
            0,
            &FioOp {
                write: false,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    assert!(
        done < SimTime::from_millis(1),
        "first op must not queue behind preconditioning: {done}"
    );
}

#[test]
fn dfs_world_runs_all_four_patterns() {
    for rw in RwMode::ALL {
        let mut w = WorldSpec::single(ClientPlacement::Host)
            .transport(Transport::Tcp)
            .jobs(2)
            .region(32 << 20)
            .mode(DataMode::Null)
            .build_dfs();
        let r = run_fio(&mut w, &quick(JobSpec::new(rw, 4096, 2).region(32 << 20)));
        assert!(r.iops() > 1000.0, "{:?}: {}", rw, r.summary());
        assert_eq!(r.io.errors.get(), 0, "{rw:?}");
    }
}

/// The Host-placement A/B pin: these exact numbers — op counts, simulated
/// throughput bits, booking counters, data-plane byte accounting — were
/// recorded from the pre-offload `DaosClient` path (PR 3 head) on a fixed
/// cell plan. The `FioClient`/`ObjectClient` refactor and every later PR
/// must reproduce them bit-for-bit: host placement is the control arm of
/// the host-vs-DPU comparison.
#[test]
fn host_placement_results_are_pinned() {
    // (transport, mode, bs, ops, gib/s bits, bookings, fastpath hits,
    //  zero-copy bytes, copied bytes)
    type PinnedCell = (Transport, RwMode, u64, u64, u64, u64, u64, u64, u64);
    let pinned: [PinnedCell; 4] = [
        (
            Transport::Rdma,
            RwMode::Write,
            1 << 20,
            200,
            0x4003880000000000,
            8960,
            7920,
            570426526,
            0,
        ),
        (
            Transport::Rdma,
            RwMode::RandRead,
            4 << 10,
            5508,
            0x3fd0cf2000000000,
            117096,
            110193,
            118195358,
            0,
        ),
        (
            Transport::Tcp,
            RwMode::RandRead,
            4 << 10,
            4837,
            0x3fcd85d000000000,
            102816,
            90704,
            24773002,
            0,
        ),
        (
            Transport::Tcp,
            RwMode::Write,
            1 << 20,
            184,
            0x4001f80000000000,
            12296,
            11834,
            394,
            0,
        ),
    ];
    for (t, rw, bs, ops, gib_bits, bookings, hits, zc, copied) in pinned {
        let mut w = WorldSpec::single(ClientPlacement::Host)
            .transport(t)
            .jobs(2)
            .region(8 << 20)
            .mode(DataMode::Null)
            .build_dfs();
        let spec = JobSpec::new(rw, bs, 2)
            .iodepth(4)
            .region(8 << 20)
            .windows(SimDuration::from_millis(20), SimDuration::from_millis(80));
        let r = run_fio(&mut w, &spec);
        let mut stats = w.fabric.resource_stats();
        stats.merge(w.cluster.resource_stats());
        stats.merge(w.client.resource_stats());
        let mut dp = w.fabric.data_plane_stats();
        dp.merge(w.cluster.data_plane_stats());
        let cell = format!("({t:?}, {rw:?}, {bs})");
        assert_eq!(r.io.meter.ops(), ops, "{cell}: ops drifted");
        assert_eq!(
            r.gib_per_sec().to_bits(),
            gib_bits,
            "{cell}: simulated throughput drifted ({} GiB/s)",
            r.gib_per_sec()
        );
        assert_eq!(stats.bookings, bookings, "{cell}: bookings drifted");
        assert_eq!(stats.fastpath_hits, hits, "{cell}: fast-path hits drifted");
        assert_eq!(dp.bytes_zero_copy, zc, "{cell}: zero-copy bytes drifted");
        assert_eq!(dp.bytes_copied, copied, "{cell}: copied bytes drifted");
        // And the host world never engages the offload machinery.
        assert_eq!(w.client.dpu_stats(), Default::default());
    }
}

#[test]
fn offloaded_world_runs_the_full_dpu_pipeline() {
    use ros2_dpu::DpuTenantSpec;
    let mut w = WorldSpec::single(ClientPlacement::Dpu)
        .jobs(2)
        .region(8 << 20)
        .mode(DataMode::Null)
        .offload(vec![DpuTenantSpec::unlimited("fio")])
        .build_dfs();
    let ops_before = w.client.ops(); // preconditioning ops (counter is cumulative)
    let r = run_fio(
        &mut w,
        &quick(
            JobSpec::new(RwMode::Write, 1 << 20, 2)
                .iodepth(4)
                .region(8 << 20),
        ),
    );
    assert!(r.io.meter.ops() > 0);
    assert_eq!(r.io.errors.get(), 0);
    let s = w.client.dpu_stats();
    assert_eq!(
        s.ops_offloaded,
        w.client.ops() - ops_before,
        "every data-plane op must run offloaded"
    );
    assert!(s.host_submits > 0 && s.host_polls > 0, "{s:?}");
    assert!(
        s.bytes_admitted > 0,
        "every byte passes TenantManager::admit"
    );
    assert!(s.crc_bytes > 0, "DPU-side checksumming engaged");
    // The host handoff is visible in accounting but small per op.
    assert!(s.handoff_wait > SimDuration::ZERO);
}

#[test]
fn dpu_cache_warms_repeat_reads_and_returns_its_carve() {
    use ros2_dpu::DpuTenantSpec;
    // Same offloaded world twice — cache off vs a 256 MiB carve — on a
    // small-block randread that re-reads a 2 MiB region: the warm cell
    // must show real hits and must not run slower.
    let run = |cache: Option<u64>| {
        let mut spec = WorldSpec::single(ClientPlacement::Dpu)
            .jobs(2)
            .region(2 << 20)
            .mode(DataMode::Null)
            .offload(vec![DpuTenantSpec::unlimited("fio")]);
        if let Some(bytes) = cache {
            spec = spec.dpu_cache(bytes);
        }
        let mut w = spec.build_dfs();
        let r = run_fio(
            &mut w,
            &quick(
                JobSpec::new(RwMode::RandRead, 16 << 10, 2)
                    .iodepth(4)
                    .region(2 << 20),
            ),
        );
        assert_eq!(r.io.errors.get(), 0);
        let stats = w.client.cache_stats();
        let carve = w
            .client
            .offloaded()
            .map(|c| c.agent().cache_reserved())
            .unwrap_or(0);
        (r.gib_per_sec(), stats, carve)
    };
    let (cold, off_stats, off_carve) = run(None);
    let (warm, on_stats, on_carve) = run(Some(256 << 20));
    assert_eq!(off_stats, Default::default(), "cache off books nothing");
    assert_eq!(off_carve, 0);
    assert_eq!(on_carve, 256 << 20, "the carve is visible at the agent");
    assert!(
        on_stats.hits > 0 && on_stats.fills > 0,
        "warm cell must hit: {on_stats:?}"
    );
    assert!(
        warm >= cold,
        "the cache may never slow reads down ({warm:.2} vs {cold:.2} GiB/s)"
    );
}

#[test]
fn offloaded_qos_shapes_contended_tenants() {
    use ros2_dpu::{DpuTenantSpec, QosLimits};
    // Two tenants share the DPU, two jobs each: "capped" at 64 MiB/s,
    // "greedy" unlimited. Admission must measurably shape capped's
    // delivered bytes while greedy runs at data-plane speed.
    let capped = DpuTenantSpec {
        name: "capped".into(),
        qos: QosLimits {
            ops_per_sec: 1_000_000,
            bytes_per_sec: 64 << 20,
            burst: (1 << 20, 1 << 20),
        },
        rkey_scope: SimDuration::from_secs(30),
    };
    let mut w = WorldSpec::single(ClientPlacement::Dpu)
        .jobs(4)
        .region(8 << 20)
        .mode(DataMode::Null)
        .offload(vec![capped, DpuTenantSpec::unlimited("greedy")])
        .build_dfs();
    let r = run_fio(
        &mut w,
        &quick(
            JobSpec::new(RwMode::Write, 1 << 20, 4)
                .iodepth(4)
                .region(8 << 20),
        ),
    );
    assert!(r.io.meter.ops() > 0);
    let admitted = |name: &str| {
        w.client
            .offloaded()
            .unwrap()
            .tenants()
            .tenant(name)
            .unwrap()
            .qos
            .admitted
            .1
    };
    let (capped_bytes, greedy_bytes) = (admitted("capped"), admitted("greedy"));
    let capped_ctx = w
        .client
        .offloaded()
        .unwrap()
        .tenants()
        .tenant("capped")
        .unwrap();
    assert!(
        capped_ctx.qos.throttled > 0,
        "the capped bucket must engage"
    );
    assert!(
        capped_ctx.qos.throttle_wait > SimDuration::from_millis(100),
        "grants must queue behind the 64 MiB/s cap"
    );
    // Admissions over the 0.1 s virtual run are bounded by the cap plus
    // the burst plus the in-flight window (2 jobs × QD 4 × 1 MiB ops that
    // were admitted but granted beyond the run).
    let bound = (64 << 20) / 10 + (1 << 20) + 8 * (1 << 20);
    assert!(
        capped_bytes <= bound,
        "capped admitted {capped_bytes} B > shaped bound {bound} B"
    );
    assert!(
        greedy_bytes > capped_bytes * 5,
        "greedy ({greedy_bytes} B) must outrun capped ({capped_bytes} B)"
    );
}

#[test]
fn offloaded_tcp_fallback_pays_the_dpu_rx_penalty() {
    use ros2_dpu::DpuTenantSpec;
    // Same offloaded stack on both transports, streaming *reads*: fetched
    // payloads land on the DPU, so the TCP fallback pays the BlueField
    // receive path (inline copies at ARM per-byte rates, the paper's "good
    // TX, weak RX") where RDMA pushes into registered DPU DRAM for free.
    let run = |transport| {
        let mut w = WorldSpec::single(ClientPlacement::Dpu)
            .transport(transport)
            .jobs(2)
            .region(8 << 20)
            .mode(DataMode::Null)
            .offload(vec![DpuTenantSpec::unlimited("fio")])
            .build_dfs();
        run_fio(
            &mut w,
            &quick(
                JobSpec::new(RwMode::Read, 1 << 20, 2)
                    .iodepth(4)
                    .region(8 << 20),
            ),
        )
        .gib_per_sec()
    };
    let rdma = run(Transport::Rdma);
    let tcp = run(Transport::Tcp);
    assert!(
        rdma > tcp * 1.5,
        "offloaded RDMA ({rdma:.2} GiB/s) must clearly beat DPU-TCP fallback ({tcp:.2} GiB/s)"
    );
}
