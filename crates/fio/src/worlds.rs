//! The three systems under test, one per paper experiment family:
//!
//! * [`LocalFioWorld`] — FIO + io_uring + local NVMe (Fig. 3);
//! * [`SpdkFioWorld`] — FIO + SPDK NVMe-oF over TCP/RDMA (Fig. 4);
//! * [`DfsFioWorld`] — FIO + DFS + DAOS, client on host or DPU (Fig. 5).
//!
//! Each world assembles the testbed from `ros2-hw` platform models,
//! preconditions its working set, resets clocks, and implements
//! [`Workload`] for the closed-loop driver.

use bytes::Bytes;
use ros2_core::FaultPlan;
use ros2_daos::{
    BgService, DaosClient, EngineCluster, Epoch, MapSnapshot, ObjectClient, RebuildStats,
    RetryPolicy, RetryStats, ScrubOutcome, ScrubStats,
};
use ros2_dfs::{Dfs, DfsObj, DfsSession};
use ros2_dpu::{DpuCacheStats, DpuClient, DpuStats};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{
    gbps, CoreClass, CpuComplement, HostPathModel, NicModel, NvmeModel, Transport, LBA_SIZE,
};
use ros2_iouring::{IoRequest, IoUringEngine};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{QosLimits, ResourceStats, SimTime};
use ros2_spdk::{BdevLayer, NvmfSession, NvmfStack};
use ros2_verbs::NodeId;

use crate::driver::{FioOp, Workload};

/// Synthetic zero payloads come from the process-wide shared zero pool
/// (`ros2_buf::zero_bytes`): slicing is refcounted and free, and the
/// checksum paths recognize pool slices as known-zero, answering their
/// CRCs in closed form instead of scanning gigabytes of zeros.
pub(crate) fn zeros(len: usize) -> Bytes {
    ros2_buf::zero_bytes(len)
}

// ---------------------------------------------------------------- local --

/// Fig. 3's system: FIO jobs over io_uring rings onto a local NVMe array.
pub struct LocalFioWorld {
    engine: IoUringEngine,
    array: NvmeArray,
    region: u64,
}

impl LocalFioWorld {
    /// Builds the world with `ssds` drives and `jobs` rings. Jobs map to
    /// devices round-robin (`dev = job % ssds`), each with a private LBA
    /// region of `region` bytes.
    pub fn new(ssds: usize, jobs: usize, region: u64, mode: DataMode) -> Self {
        LocalFioWorld {
            engine: IoUringEngine::new(HostPathModel::iouring(), jobs, 256),
            array: NvmeArray::new(NvmeModel::enterprise_1600(), ssds, mode),
            region,
        }
    }

    /// The device array (stats inspection).
    pub fn array(&self) -> &NvmeArray {
        &self.array
    }
}

impl Workload for LocalFioWorld {
    fn issue(&mut self, now: SimTime, job: usize, op: &FioOp) -> Result<SimTime, String> {
        let ndev = self.array.len();
        let dev = job % ndev;
        let lane = (job / ndev) as u64;
        let base_lba = lane * (self.region / LBA_SIZE);
        let req = IoRequest {
            dev,
            write: op.write,
            slba: base_lba + op.offset / LBA_SIZE,
            nlb: (op.len / LBA_SIZE) as u32,
            data: op.write.then(|| zeros(op.len as usize)),
        };
        self.engine
            .submit(now, job, &mut self.array, req)
            .map(|c| c.at)
            .map_err(|e| format!("{e:?}"))
    }
}

// ----------------------------------------------------------------- spdk --

/// Fig. 4's system: FIO jobs over NVMe-oF sessions, one session per job,
/// with the client/server reactor core counts as sweep axes.
pub struct SpdkFioWorld {
    stack: NvmfStack,
    sessions: Vec<NvmfSession>,
    region: u64,
}

impl SpdkFioWorld {
    /// Builds the remote stack: host client and storage server through the
    /// 100 Gbps switch, one exported SSD (the paper's Fig. 4 setup).
    pub fn new(
        transport: Transport,
        client_cores: usize,
        server_cores: usize,
        jobs: usize,
        region: u64,
        mode: DataMode,
    ) -> Self {
        let client = NodeSpec {
            name: "client".into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: client_cores,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 16 << 30,
            dpu_tcp_rx: None,
        };
        let server = NodeSpec {
            name: "storage".into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: server_cores,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 16 << 30,
            dpu_tcp_rx: None,
        };
        let fabric = Fabric::new(transport, vec![client, server], 0xf14);
        let bdevs = BdevLayer::new(NvmeArray::new(NvmeModel::enterprise_1600(), 1, mode));
        let mut stack = NvmfStack::new(
            fabric,
            NodeId(0),
            NodeId(1),
            client_cores,
            server_cores,
            bdevs,
        );
        let sessions = (0..jobs)
            .map(|_| stack.open_session(4 << 20).expect("session"))
            .collect();
        SpdkFioWorld {
            stack,
            sessions,
            region,
        }
    }
}

impl Workload for SpdkFioWorld {
    fn issue(&mut self, now: SimTime, job: usize, op: &FioOp) -> Result<SimTime, String> {
        let base_lba = job as u64 * (self.region / LBA_SIZE);
        let slba = base_lba + op.offset / LBA_SIZE;
        let session = &mut self.sessions[job];
        if op.write {
            self.stack
                .write(now, session, 0, slba, zeros(op.len as usize))
                .map_err(|e| format!("{e:?}"))
        } else {
            self.stack
                .read(now, session, 0, slba, (op.len / LBA_SIZE) as u32)
                .map(|(at, _)| at)
                .map_err(|e| format!("{e:?}"))
        }
    }
}

// ------------------------------------------------------------------ dfs --

/// The client stack a [`DfsFioWorld`] drives.
///
/// `Classic` is the pre-offload path: one in-process [`DaosClient`] on the
/// client node (host placement, and the historical DPU *cost-model* mode
/// where only the node spec changes) — its behaviour is pinned bit-for-bit
/// by `worlds_tests::host_placement_results_are_pinned`. `Offloaded` is the
/// real SmartNIC architecture: a [`DpuClient`] running the whole client on
/// the DPU behind a host submit/poll pair, with tenant QoS admission live.
// One client per world, never stored in bulk — the variant size gap
// (DpuClient embeds agent + tenant manager) costs nothing here.
#[allow(clippy::large_enum_variant)]
pub enum FioClient {
    /// In-process `libdaos` on the client node.
    Classic(DaosClient),
    /// The DPU-offloaded client (host only rings doorbells).
    Offloaded(DpuClient),
}

impl FioClient {
    /// The client as the object-I/O interface DFS drives.
    pub fn as_object(&mut self) -> &mut dyn ObjectClient {
        match self {
            FioClient::Classic(c) => c,
            FioClient::Offloaded(c) => c,
        }
    }

    /// Aggregate booking / fast-path counters over the client cores.
    pub fn resource_stats(&self) -> ResourceStats {
        match self {
            FioClient::Classic(c) => c.resource_stats(),
            FioClient::Offloaded(c) => c.resource_stats(),
        }
    }

    /// Resets per-job core timing (and, offloaded, QoS buckets) to t=0.
    pub fn reset_timing(&mut self) {
        match self {
            FioClient::Classic(c) => c.reset_timing(),
            FioClient::Offloaded(c) => c.reset_timing(),
        }
    }

    /// Data-plane operations issued.
    pub fn ops(&self) -> u64 {
        match self {
            FioClient::Classic(c) => ObjectClient::ops(c),
            FioClient::Offloaded(c) => ObjectClient::ops(c),
        }
    }

    /// Offload-path counters (zero for the classic in-process client).
    pub fn dpu_stats(&self) -> DpuStats {
        match self {
            FioClient::Classic(_) => DpuStats::default(),
            FioClient::Offloaded(c) => c.dpu_stats(),
        }
    }

    /// Forces the pipelined data path to drain each op serially (see
    /// [`DaosClient::set_force_serial_pipeline`]) — the A/B replay oracle
    /// for the chaos and recovery figures.
    pub fn set_force_serial_pipeline(&mut self, on: bool) {
        match self {
            FioClient::Classic(c) => c.set_force_serial_pipeline(on),
            FioClient::Offloaded(c) => c.set_force_serial_pipeline(on),
        }
    }

    /// The offloaded client, when this world runs one.
    pub fn offloaded(&self) -> Option<&DpuClient> {
        match self {
            FioClient::Classic(_) => None,
            FioClient::Offloaded(c) => Some(c),
        }
    }

    /// Mutable access to the offloaded client (cache enable/disable
    /// between sweep cells).
    pub fn offloaded_mut(&mut self) -> Option<&mut DpuClient> {
        match self {
            FioClient::Classic(_) => None,
            FioClient::Offloaded(c) => Some(c),
        }
    }

    /// DPU read-cache counters (all zeros for classic clients or with the
    /// cache disabled).
    pub fn cache_stats(&self) -> DpuCacheStats {
        match self {
            FioClient::Classic(_) => DpuCacheStats::default(),
            FioClient::Offloaded(c) => c.cache_stats(),
        }
    }

    /// Delivers a RAS map snapshot to the client's cached map at `at`
    /// (every tenant lane, when offloaded).
    pub fn deliver_map(&mut self, at: SimTime, snap: MapSnapshot) {
        match self {
            FioClient::Classic(c) => c.deliver_map(at, snap),
            FioClient::Offloaded(c) => c.deliver_map(at, snap),
        }
    }

    /// Recovery-ladder counters (all DPU lanes merged, when offloaded).
    pub fn retry_stats(&self) -> RetryStats {
        match self {
            FioClient::Classic(c) => c.retry_stats(),
            FioClient::Offloaded(c) => c.retry_stats(),
        }
    }

    /// Sets the recovery-ladder policy on the client(s).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        match self {
            FioClient::Classic(c) => c.set_retry_policy(policy),
            FioClient::Offloaded(c) => c.set_retry_policy(policy),
        }
    }

    /// Earliest instant an op completed on a retry attempt.
    pub fn first_successful_retry(&self) -> Option<SimTime> {
        match self {
            FioClient::Classic(c) => c.first_successful_retry(),
            FioClient::Offloaded(c) => c.first_successful_retry(),
        }
    }
}

/// Fig. 5's system: FIO's DFS engine over the full ROS2 stack, with the
/// DAOS client on the host CPU or offloaded to the BlueField-3.
pub struct DfsFioWorld {
    /// The data-plane fabric.
    pub fabric: Fabric,
    /// The storage cluster (the degenerate single-engine cluster for the
    /// classic two-node worlds).
    pub cluster: EngineCluster,
    /// The client stack (in-process or DPU-offloaded).
    pub client: FioClient,
    /// The mounted namespace.
    pub dfs: Dfs,
    files: Vec<DfsObj>,
}

impl DfsFioWorld {
    /// Formats the namespace, preconditions one `region`-byte file per job,
    /// and resets all clocks for measurement. The assembly half lives in
    /// [`crate::WorldSpec`] — every world is described there and built
    /// through here.
    pub(crate) fn precondition(
        mut fabric: Fabric,
        mut cluster: EngineCluster,
        mut client: FioClient,
        jobs: usize,
        region: u64,
    ) -> Self {
        let chunk = 1u64 << 20;
        let (mut dfs, mut t) = {
            let mut s = DfsSession {
                fabric: &mut fabric,
                cluster: &mut cluster,
                client: client.as_object(),
            };
            Dfs::format(&mut s, SimTime::ZERO, chunk).expect("format")
        };
        let root = dfs.root();
        let mut files = Vec::with_capacity(jobs);
        for j in 0..jobs {
            let mut s = DfsSession {
                fabric: &mut fabric,
                cluster: &mut cluster,
                client: client.as_object(),
            };
            let (mut f, t1) = dfs
                .create(&mut s, t, &root, &format!("job{j}"), 0o644)
                .expect("create");
            t = t1;
            let mut off = 0u64;
            while off < region {
                let piece = chunk.min(region - off);
                t = dfs
                    .write(&mut s, t, j, &mut f, off, zeros(piece as usize))
                    .expect("precondition write");
                off += piece;
            }
            files.push(f);
        }

        // Preconditioning consumed virtual time; measurement starts fresh.
        fabric.reset_timing();
        cluster.reset_timing();
        client.reset_timing();

        DfsFioWorld {
            fabric,
            cluster,
            client,
            dfs,
            files,
        }
    }

    /// Resets fabric, cluster, and client timing to t=0 (contents kept) —
    /// between measured phases of a failure scenario.
    pub fn reset_timing(&mut self) {
        self.fabric.reset_timing();
        self.cluster.reset_timing();
        self.client.reset_timing();
    }

    /// Routes data I/O through the client's submission/completion ring —
    /// the `iodepth > 1` configuration the `fig_qd` sweep measures. Off
    /// (the default) keeps the serial client path bit-identical to the
    /// legacy sweeps.
    pub fn set_pipelined(&mut self, on: bool) {
        self.dfs.set_data_pipeline(on);
    }

    /// The preconditioned file handles (one per job).
    pub fn file(&self, job: usize) -> &DfsObj {
        &self.files[job]
    }
}

// -------------------------------------------------------------- cluster --

/// The scale-out world: FIO's DFS engine over an N-engine replicated
/// cluster — one storage server per engine behind the shared 100 Gbps
/// switch, the host client routing every op by the versioned pool map.
/// This is the deployment shape of §3.1 and the harness behind the
/// `fig_scaleout` sweep and the engine-kill failure scenarios.
pub struct ClusterFioWorld {
    /// The assembled world (same layout as [`DfsFioWorld`], N engines).
    pub world: DfsFioWorld,
    /// The installed chaos schedule (empty by default — bit-identical to
    /// the fault-oblivious world).
    faults: FaultPlan,
    /// Index of the next unfired entry in `faults.kills`.
    next_kill: usize,
    /// Index of the next unfired entry in `faults.bitrot`.
    next_bitrot: usize,
}

impl ClusterFioWorld {
    /// Wraps a preconditioned world with an empty chaos schedule. The
    /// assembly half lives in [`crate::WorldSpec::build`].
    pub(crate) fn from_world(world: DfsFioWorld) -> Self {
        ClusterFioWorld {
            world,
            faults: FaultPlan::none(),
            next_kill: 0,
            next_bitrot: 0,
        }
    }

    /// Installs a chaos schedule: black holes and stalls apply
    /// immediately, kills arm against the client-op counter and fire
    /// between ops of the measured run, and every RAS delivery the kills
    /// trigger reaches the client `ras_delay` late.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for &slot in &plan.blackholes {
            self.world.cluster.set_blackhole(slot, true);
        }
        for stall in &plan.stalls {
            self.world.cluster.set_stall(stall.slot, stall.extra);
        }
        self.faults = plan;
        self.next_kill = 0;
        self.next_bitrot = 0;
    }

    /// Kills engine `slot` (pool-map revision bump; subsequent fetches of
    /// affected objects are served degraded). Returns the new revision.
    /// The new map is handed to the client as an already-landed delivery
    /// (applied at its next map poll) — use a fault plan's scheduled
    /// kills to model delayed RAS propagation.
    pub fn kill_engine(&mut self, slot: usize) -> Result<u64, String> {
        let version = self
            .world
            .cluster
            .kill_engine(slot)
            .map_err(|e| format!("{e:?}"))?;
        let snap = self.world.cluster.snapshot_map();
        self.world.client.deliver_map(SimTime::ZERO, snap);
        Ok(version)
    }

    /// Fires any armed kills whose client-op threshold has been crossed,
    /// delivering the RAS map update `ras_delay` after the kill instant.
    fn fire_due_kills(&mut self, now: SimTime) -> Result<(), String> {
        while self.next_kill < self.faults.kills.len() {
            let kill = self.faults.kills[self.next_kill];
            if self.world.client.ops() < kill.after_client_ops {
                break;
            }
            self.next_kill += 1;
            self.world
                .cluster
                .kill_engine(kill.slot)
                .map_err(|e| format!("{e:?}"))?;
            let snap = self.world.cluster.snapshot_map();
            self.world
                .client
                .deliver_map(now + self.faults.ras_delay, snap);
        }
        while self.next_bitrot < self.faults.bitrot.len() {
            let rot = self.faults.bitrot[self.next_bitrot];
            if self.world.client.ops() < rot.after_client_ops {
                break;
            }
            self.next_bitrot += 1;
            let engine = self.world.cluster.engine_mut(rot.slot);
            let oids = engine.list_objects();
            // Walk forward from the drawn index to the next object with
            // array payload — metadata objects have nothing to rot.
            for k in 0..oids.len() {
                let oid = oids[(rot.object_index + k) % oids.len()];
                if engine.corrupt_object(oid) {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Runs the online rebuild at `now`; returns its completion instant.
    /// Rebuild completion is itself a map event (the revision bumps as
    /// the pre-kill-survivor routing override ends), so the new map is
    /// delivered to the client at the completion instant plus the plan's
    /// RAS delay.
    pub fn rebuild(&mut self, now: SimTime) -> Result<SimTime, String> {
        let t = self
            .world
            .cluster
            .rebuild(&mut self.world.fabric, now)
            .map_err(|e| format!("{e:?}"))?;
        let snap = self.world.cluster.snapshot_map();
        self.world
            .client
            .deliver_map(t + self.faults.ras_delay, snap);
        Ok(t)
    }

    /// Redundancy counters (degraded reads served, rebuild movement).
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.world.cluster.rebuild_stats()
    }

    /// See [`DfsFioWorld::file`].
    pub fn file(&self, job: usize) -> &DfsObj {
        self.world.file(job)
    }

    /// See [`DfsFioWorld::reset_timing`].
    pub fn reset_timing(&mut self) {
        self.world.reset_timing();
    }

    /// Recovery-ladder counters across the client stack (host client or
    /// all DPU lanes) — one table row per arm in the A/B reports.
    pub fn retry_stats(&self) -> RetryStats {
        self.world.client.retry_stats()
    }

    /// Sets the recovery-ladder policy on the client(s).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.world.client.set_retry_policy(policy);
    }

    /// Earliest instant an op completed on a retry attempt.
    pub fn first_successful_retry(&self) -> Option<SimTime> {
        self.world.client.first_successful_retry()
    }

    /// Total stale-map fences observed across the cluster's engines.
    pub fn fences(&self) -> u64 {
        self.world.cluster.fences()
    }

    /// Sets a background service's pacing budget (rebuild, aggregation,
    /// or scrub lane). Unlimited by default — bit-identical to unpaced.
    pub fn set_service_budget(&mut self, service: BgService, limits: QosLimits) {
        self.world.cluster.set_service_budget(service, limits);
    }

    /// Coordinated epoch aggregation of the `posix` container at the
    /// cluster-safe boundary; returns `(boundary, completion instant)`.
    pub fn aggregate(&mut self, now: SimTime) -> Result<(Epoch, SimTime), String> {
        self.world
            .cluster
            .aggregate_cluster(now, "posix", None)
            .map_err(|e| format!("{e:?}"))
    }

    /// One replica-scrub pass: detects bit-rot via recorded-vs-media
    /// checksum cross-checks and repairs rotten replicas from a healthy
    /// copy over the rebuild fabric path.
    pub fn scrub(&mut self, now: SimTime) -> Result<(ScrubOutcome, SimTime), String> {
        self.world
            .cluster
            .scrub(&mut self.world.fabric, now)
            .map_err(|e| format!("{e:?}"))
    }

    /// Background-service counters (scrub passes, repair volume,
    /// per-service throttle waits).
    pub fn scrub_stats(&self) -> ScrubStats {
        self.world.cluster.scrub_stats()
    }
}

impl Workload for ClusterFioWorld {
    fn issue(&mut self, now: SimTime, job: usize, op: &FioOp) -> Result<SimTime, String> {
        self.fire_due_kills(now)?;
        self.world.issue(now, job, op)
    }
}

impl Workload for DfsFioWorld {
    fn issue(&mut self, now: SimTime, job: usize, op: &FioOp) -> Result<SimTime, String> {
        let mut s = DfsSession {
            fabric: &mut self.fabric,
            cluster: &mut self.cluster,
            client: self.client.as_object(),
        };
        if op.write {
            let data = zeros(op.len as usize);
            self.dfs
                .write(&mut s, now, job, &mut self.files[job], op.offset, data)
                .map_err(|e| format!("{e:?}"))
        } else {
            self.dfs
                .read(&mut s, now, job, &self.files[job], op.offset, op.len)
                .map(|(_, at)| at)
                .map_err(|e| format!("{e:?}"))
        }
    }
}
