//! FIO-style job specifications and run reports.

use ros2_sim::{IoReport, SimDuration};

/// The four POSIX-style access patterns the paper evaluates everywhere.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RwMode {
    /// Sequential read.
    Read,
    /// Sequential write.
    Write,
    /// Random read.
    RandRead,
    /// Random write.
    RandWrite,
}

impl RwMode {
    /// All four patterns, in the paper's row order (R, W, RR, RW).
    pub const ALL: [RwMode; 4] = [
        RwMode::Read,
        RwMode::Write,
        RwMode::RandRead,
        RwMode::RandWrite,
    ];

    /// Whether this mode writes.
    pub fn is_write(self) -> bool {
        matches!(self, RwMode::Write | RwMode::RandWrite)
    }

    /// Whether this mode is random-access.
    pub fn is_random(self) -> bool {
        matches!(self, RwMode::RandRead | RwMode::RandWrite)
    }

    /// FIO-style label ("read", "write", "randread", "randwrite").
    pub fn label(self) -> &'static str {
        match self {
            RwMode::Read => "read",
            RwMode::Write => "write",
            RwMode::RandRead => "randread",
            RwMode::RandWrite => "randwrite",
        }
    }

    /// Paper row label (R, W, RR, RW).
    pub fn short(self) -> &'static str {
        match self {
            RwMode::Read => "R",
            RwMode::Write => "W",
            RwMode::RandRead => "RR",
            RwMode::RandWrite => "RW",
        }
    }
}

/// One FIO job-file equivalent.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Access pattern.
    pub rw: RwMode,
    /// Block size in bytes (the paper uses 1 MiB and 4 KiB).
    pub bs: u64,
    /// Number of parallel jobs.
    pub numjobs: usize,
    /// Per-job queue depth (outstanding ops).
    pub iodepth: usize,
    /// Warmup excluded from measurement.
    pub ramp: SimDuration,
    /// Measured window.
    pub runtime: SimDuration,
    /// Per-job working-set size in bytes.
    pub region: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl JobSpec {
    /// A spec with the defaults the figures use: QD 8, 200 ms ramp,
    /// 600 ms measured window, 1 GiB per-job region.
    pub fn new(rw: RwMode, bs: u64, numjobs: usize) -> Self {
        JobSpec {
            rw,
            bs,
            numjobs,
            iodepth: 8,
            ramp: SimDuration::from_millis(200),
            runtime: SimDuration::from_millis(600),
            region: 1 << 30,
            seed: 0x0f10,
        }
    }

    /// Overrides the queue depth.
    pub fn iodepth(mut self, qd: usize) -> Self {
        self.iodepth = qd;
        self
    }

    /// Overrides the per-job region.
    pub fn region(mut self, bytes: u64) -> Self {
        self.region = bytes;
        self
    }

    /// Overrides the measurement windows.
    pub fn windows(mut self, ramp: SimDuration, runtime: SimDuration) -> Self {
        self.ramp = ramp;
        self.runtime = runtime;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The result of one FIO run.
#[derive(Clone, Debug)]
pub struct FioReport {
    /// The spec that produced it.
    pub spec: JobSpec,
    /// Aggregate measurements over the window.
    pub io: IoReport,
}

impl FioReport {
    /// Bandwidth in GiB/s.
    pub fn gib_per_sec(&self) -> f64 {
        self.io.gib_per_sec()
    }
    /// IOPS.
    pub fn iops(&self) -> f64 {
        self.io.iops()
    }
    /// IOPS in thousands (the paper's 4 KiB unit).
    pub fn kiops(&self) -> f64 {
        self.io.iops() / 1e3
    }
    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{:>9} bs={:>7} jobs={:<2} {}",
            self.spec.rw.label(),
            self.spec.bs,
            self.spec.numjobs,
            self.io.summary()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_fio_conventions() {
        assert_eq!(RwMode::RandRead.label(), "randread");
        assert_eq!(RwMode::RandWrite.short(), "RW");
        assert!(RwMode::Write.is_write());
        assert!(!RwMode::Read.is_random());
        assert!(RwMode::RandWrite.is_write() && RwMode::RandWrite.is_random());
    }

    #[test]
    fn builder_overrides() {
        let s = JobSpec::new(RwMode::Read, 4096, 4)
            .iodepth(16)
            .region(1 << 20)
            .seed(9);
        assert_eq!(s.iodepth, 16);
        assert_eq!(s.region, 1 << 20);
        assert_eq!(s.seed, 9);
        assert_eq!(s.numjobs, 4);
    }
}
