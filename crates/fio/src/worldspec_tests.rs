//! Builder-parity suite: a [`WorldSpec`]-built world must replay
//! **bit-identically** to the positional constructor it replaced. The
//! fingerprints below (op counts, throughput bit patterns, booking and
//! fast-path counters) were recorded by running the old
//! `ClusterFioWorld::new` / `::offloaded` and `DfsFioWorld::offloaded` /
//! `::with_wire_mode` constructors immediately before their removal, on
//! the exact job specs used here. Any drift in the builder's assembly
//! order, seeds, or defaults breaks these pins.

use ros2_dpu::DpuTenantSpec;
use ros2_hw::ClientPlacement;
use ros2_nvme::DataMode;
use ros2_sim::{ResourceStats, SimDuration};

use crate::{run_fio, ClusterFioWorld, DfsFioWorld, JobSpec, RwMode, WorldSpec};

fn cluster_job() -> JobSpec {
    JobSpec::new(RwMode::RandRead, 1 << 20, 4)
        .iodepth(2)
        .region(4 << 20)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(30))
}

fn single_job() -> JobSpec {
    JobSpec::new(RwMode::Write, 1 << 20, 2)
        .iodepth(4)
        .region(8 << 20)
        .windows(SimDuration::from_millis(20), SimDuration::from_millis(80))
}

fn cluster_stats(w: &ClusterFioWorld) -> ResourceStats {
    let mut stats = w.world.fabric.resource_stats();
    stats.merge(w.world.cluster.resource_stats());
    stats.merge(w.world.client.resource_stats());
    stats
}

#[test]
fn builder_host_cluster_matches_old_constructor() {
    // Was: ClusterFioWorld::new(Rdma, 3, 2, 1, 4, 4 << 20, Stored) —
    // every value below is the builder's default except what's chained.
    let mut w = WorldSpec::cluster(3).replication(2).jobs(4).build();
    let r = run_fio(&mut w, &cluster_job());
    let stats = cluster_stats(&w);
    assert_eq!(r.io.meter.ops(), 147);
    assert_eq!(r.gib_per_sec().to_bits(), 0x4013240000000000);
    assert_eq!((stats.bookings, stats.fastpath_hits), (5280, 4773));
    assert_eq!(w.fences(), 0);
    assert_eq!(w.world.client.ops(), 201);
}

#[test]
fn builder_offloaded_cluster_matches_old_constructor() {
    // Was: ClusterFioWorld::offloaded(Rdma, 2, 2, 1, 4, 4 << 20, Null,
    // vec![unlimited("fio")]) — the 8-positional-argument signature the
    // redesign deleted.
    let mut w = WorldSpec::cluster(2)
        .replication(2)
        .jobs(4)
        .mode(DataMode::Null)
        .offload(vec![DpuTenantSpec::unlimited("fio")])
        .build();
    let r = run_fio(&mut w, &cluster_job());
    let stats = cluster_stats(&w);
    assert_eq!(r.io.meter.ops(), 134);
    assert_eq!(r.gib_per_sec().to_bits(), 0x401172aaaaaaaaab);
    assert_eq!((stats.bookings, stats.fastpath_hits), (4785, 4117));
    assert_eq!(w.fences(), 0);
    assert_eq!(w.world.client.ops(), 186);
}

#[test]
fn builder_offloaded_single_matches_old_constructor() {
    // Was: DfsFioWorld::offloaded(Rdma, 1, 2, 8 << 20, Null, tenants).
    let mut w = WorldSpec::single(ClientPlacement::Dpu)
        .jobs(2)
        .region(8 << 20)
        .mode(DataMode::Null)
        .offload(vec![DpuTenantSpec::unlimited("fio")])
        .build_dfs();
    let r = run_fio(&mut w, &single_job());
    let mut stats = w.fabric.resource_stats();
    stats.merge(w.cluster.resource_stats());
    stats.merge(w.client.resource_stats());
    assert_eq!(r.io.meter.ops(), 196);
    assert_eq!(r.gib_per_sec().to_bits(), 0x4003240000000000);
    assert_eq!((stats.bookings, stats.fastpath_hits), (8610, 7610));
    assert_eq!(w.client.ops(), 283);
}

#[test]
fn builder_per_segment_single_matches_old_constructor() {
    // Was: DfsFioWorld::with_wire_mode(Rdma, Host, 1, 2, 8 << 20, Null,
    // true) — the perf_regression A/B arm with per-segment wire booking
    // forced from construction.
    let mut w = WorldSpec::single(ClientPlacement::Host)
        .jobs(2)
        .region(8 << 20)
        .mode(DataMode::Null)
        .wire_per_segment(true)
        .build_dfs();
    let r = run_fio(&mut w, &single_job());
    assert_eq!(r.io.meter.ops(), 200);
    assert_eq!(r.gib_per_sec().to_bits(), 0x4003880000000000);
}

#[test]
fn wire_mode_does_not_change_simulated_results() {
    // The per-segment A/B switch must keep simulated physics identical —
    // only host-process perf differs (that half is measured in CI's
    // perf_regression harness, not here).
    let fast = run_fio(
        &mut WorldSpec::single(ClientPlacement::Host)
            .jobs(2)
            .region(8 << 20)
            .mode(DataMode::Null)
            .build_dfs(),
        &single_job(),
    );
    let slow = run_fio(
        &mut WorldSpec::single(ClientPlacement::Host)
            .jobs(2)
            .region(8 << 20)
            .mode(DataMode::Null)
            .wire_per_segment(true)
            .build_dfs(),
        &single_job(),
    );
    assert_eq!(fast.io.meter.ops(), slow.io.meter.ops());
    assert_eq!(fast.gib_per_sec().to_bits(), slow.gib_per_sec().to_bits());
}

#[test]
fn seed_is_a_spec_field_with_the_historical_default() {
    assert_eq!(WorldSpec::DEFAULT_SEED, 0xd0e5);
    // A different fabric seed still assembles and runs; determinism per
    // seed is covered by the replay suites.
    let mut w = WorldSpec::single(ClientPlacement::Host)
        .seed(0xbeef)
        .jobs(2)
        .region(8 << 20)
        .mode(DataMode::Null)
        .build_dfs();
    let r = run_fio(&mut w, &single_job());
    assert!(r.io.meter.ops() > 0);
}

#[test]
fn builder_replays_are_deterministic() {
    let build = || -> DfsFioWorld {
        WorldSpec::single(ClientPlacement::Host)
            .jobs(2)
            .region(8 << 20)
            .mode(DataMode::Null)
            .build_dfs()
    };
    let a = run_fio(&mut build(), &single_job());
    let b = run_fio(&mut build(), &single_job());
    assert_eq!(a.io.meter.ops(), b.io.meter.ops());
    assert_eq!(a.gib_per_sec().to_bits(), b.gib_per_sec().to_bits());
}
