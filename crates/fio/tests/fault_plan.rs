//! FaultPlan threading through the cluster FIO worlds: a scheduled
//! mid-flight engine kill with delayed RAS delivery must ride the
//! client's recovery ladder — stale-map fences, map refreshes, bounded
//! retries — and still finish the closed-loop run with **zero failed
//! ops**. The empty plan is pinned bit-identical to a world that never
//! heard of fault plans, and the same chaos schedule runs A/B on the
//! host client and the DPU-offloaded client (satellite: `RetryStats`
//! rides `DpuStats` so both arms report comparably).

use ros2_core::FaultPlan;
use ros2_daos::RetryStats;
use ros2_dpu::DpuTenantSpec;
use ros2_fio::{run_fio, ClusterFioWorld, FioReport, JobSpec, RwMode, WorldSpec};
use ros2_sim::SimDuration;

const ENGINES: usize = 4;
const RF: usize = 2;
const JOBS: usize = 4;
const REGION: u64 = 8 << 20;

/// 4 MiB ops over 1 MiB DFS chunks: every op is a 4-deep pipelined ring,
/// so kills land while legs are genuinely in flight.
fn chaos_spec(rw: RwMode) -> JobSpec {
    JobSpec::new(rw, 4 << 20, JOBS)
        .iodepth(8)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(30))
        .seed(7)
}

fn host_world() -> ClusterFioWorld {
    let mut w = WorldSpec::cluster(ENGINES)
        .replication(RF)
        .jobs(JOBS)
        .region(REGION)
        .build();
    w.world.set_pipelined(true);
    w
}

fn dpu_world() -> ClusterFioWorld {
    let mut w = WorldSpec::cluster(ENGINES)
        .replication(RF)
        .jobs(JOBS)
        .region(REGION)
        .offload(vec![DpuTenantSpec::unlimited("fio")])
        .build();
    w.world.set_pipelined(true);
    w
}

/// Arms one kill of `slot` after 64 more client ops (mid-run for any of
/// these specs), with RAS delivery lagging half a millisecond — dozens
/// of op-latencies, so a real stale window opens.
fn arm_kill(w: &mut ClusterFioWorld, slot: usize) {
    let after = w.world.client.ops() + 64;
    w.set_fault_plan(FaultPlan::kill_after(
        slot,
        after,
        SimDuration::from_micros(500),
    ));
}

fn assert_ladder_recovered(tag: &str, report: &FioReport, w: &ClusterFioWorld) {
    let retry = w.retry_stats();
    assert_eq!(
        report.io.errors.get(),
        0,
        "{tag}: kill under load must not fail ops ({retry:?})"
    );
    assert!(
        w.fences() >= 1,
        "{tag}: the stale window must fence at least once"
    );
    assert!(
        retry.retries >= 1,
        "{tag}: recovery must go through the ladder ({retry:?})"
    );
    assert!(
        retry.map_refreshes >= 1,
        "{tag}: the ladder must refresh the map ({retry:?})"
    );
    assert_eq!(retry.exhausted, 0, "{tag}: no op may exhaust its budget");
    assert!(
        w.first_successful_retry().is_some(),
        "{tag}: time-to-first-successful-retry must be recorded"
    );
}

#[test]
fn scheduled_kill_under_fio_load_recovers_with_zero_failures() {
    let mut w = host_world();
    arm_kill(&mut w, 1);
    let report = run_fio(&mut w, &chaos_spec(RwMode::RandRead));
    assert_ladder_recovered("host/randread", &report, &w);
    assert!(
        report.gib_per_sec() > 0.0,
        "measured window must still make progress"
    );
}

#[test]
fn scheduled_kill_during_writes_recovers_with_zero_failures() {
    let mut w = host_world();
    arm_kill(&mut w, 2);
    let report = run_fio(&mut w, &chaos_spec(RwMode::RandWrite));
    assert_ladder_recovered("host/randwrite", &report, &w);
}

#[test]
fn empty_plan_is_bit_identical_to_a_fault_oblivious_world() {
    let spec = chaos_spec(RwMode::RandRead);

    let mut oblivious = host_world();
    let base = run_fio(&mut oblivious, &spec);

    let mut planned = host_world();
    planned.set_fault_plan(FaultPlan::none());
    let under_plan = run_fio(&mut planned, &spec);

    assert_eq!(
        base.io.summary(),
        under_plan.io.summary(),
        "FaultPlan::none() must not perturb the run"
    );
    assert_eq!(
        base.gib_per_sec().to_bits(),
        under_plan.gib_per_sec().to_bits()
    );
    assert_eq!(planned.retry_stats(), RetryStats::default());
    assert_eq!(planned.fences(), 0);
    assert_eq!(planned.first_successful_retry(), None);
}

#[test]
fn host_and_dpu_ride_the_same_chaos_schedule() {
    let spec = chaos_spec(RwMode::RandRead);

    let mut host = host_world();
    arm_kill(&mut host, 1);
    let host_report = run_fio(&mut host, &spec);
    assert_ladder_recovered("host", &host_report, &host);

    let mut dpu = dpu_world();
    arm_kill(&mut dpu, 1);
    let dpu_report = run_fio(&mut dpu, &spec);
    assert_ladder_recovered("dpu", &dpu_report, &dpu);

    // Satellite: the offloaded stack folds its lanes' ladder counters
    // into DpuStats, so A/B reports read from one place on both arms.
    assert_eq!(
        dpu.world.client.dpu_stats().retry,
        dpu.retry_stats(),
        "DpuStats.retry must mirror the lane ladder counters"
    );
}
