//! System tests for the multi-client incast world (PR 9): fairness on
//! the shared storage ports, bounded engine-side connection state under
//! pool pressure, and the RAS push fan-out surviving an engine kill with
//! zero failed ops.

use ros2_core::FaultPlan;
use ros2_fio::{run_fio, Clients, FioReport, JobSpec, RwMode, WorldSpec};
use ros2_sim::SimDuration;

const REGION: u64 = 4 << 20;

fn incast_spec(total_jobs: usize) -> JobSpec {
    JobSpec::new(RwMode::RandRead, 1 << 20, total_jobs)
        .iodepth(2)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(20))
        .seed(9)
}

fn write_spec(total_jobs: usize) -> JobSpec {
    JobSpec::new(RwMode::RandWrite, 1 << 20, total_jobs)
        .iodepth(2)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(20))
        .seed(13)
}

#[test]
fn incast_world_runs_every_client_and_stays_fair() {
    let mut w = WorldSpec::cluster(2)
        .clients(Clients::host(8))
        .jobs(2)
        .region(REGION)
        .build_incast();
    assert_eq!(w.client_count(), 8);
    assert_eq!(w.total_jobs(), 16);

    let spec = incast_spec(w.total_jobs());
    let report: FioReport = run_fio(&mut w, &spec);
    assert_eq!(report.io.errors.get(), 0, "incast run must not error");
    assert!(report.io.meter.ops() > 0);

    // Fairness: every client makes progress, and no client starves —
    // the per-client op spread stays within 2x on the symmetric plan.
    let ops = w.per_client_ops();
    let min = *ops.iter().min().unwrap();
    let max = *ops.iter().max().unwrap();
    assert!(min > 0, "every client must issue ops: {ops:?}");
    assert!(
        max <= 2 * min,
        "symmetric clients must share the storage ports fairly: {ops:?}"
    );
}

#[test]
fn mixed_host_dpu_clients_share_one_cluster() {
    let mut w = WorldSpec::cluster(2)
        .clients(Clients::mixed(2, 2))
        .jobs(1)
        .region(REGION)
        .build_incast();
    let spec = incast_spec(w.total_jobs());
    let report = run_fio(&mut w, &spec);
    assert_eq!(report.io.errors.get(), 0);
    assert!(w.per_client_ops().iter().all(|&o| o > 0));
}

#[test]
fn pool_keeps_resident_state_bounded_under_thrash() {
    // 8 clients through a 2-session pool: every admission round-robins
    // the LRU set, so the pool must evict constantly yet never exceed
    // its capacity — and the workload must not notice.
    let mut w = WorldSpec::cluster(2)
        .clients(Clients::host(8))
        .jobs(1)
        .region(REGION)
        .pool_capacity(2)
        .build_incast();
    let spec = incast_spec(w.total_jobs());
    let report = run_fio(&mut w, &spec);
    assert_eq!(report.io.errors.get(), 0);

    let stats = w.conn_pool_stats();
    assert!(stats.resident_peak <= 2, "pool overflowed: {stats:?}");
    assert_eq!(stats.admits, stats.hits + stats.misses);
    assert!(stats.evictions > 0, "8 clients must thrash a 2-slot pool");
    assert!(stats.reconnects > 0, "evicted clients must re-handshake");
    assert!(
        stats.misses >= 8,
        "every client pays at least its first handshake: {stats:?}"
    );
}

#[test]
fn pool_sized_to_the_client_count_converges_to_hits() {
    let mut w = WorldSpec::cluster(2)
        .clients(Clients::host(4))
        .jobs(2)
        .region(REGION)
        .pool_capacity(4)
        .build_incast();
    let spec = incast_spec(w.total_jobs());
    let report = run_fio(&mut w, &spec);
    assert_eq!(report.io.errors.get(), 0);

    let stats = w.conn_pool_stats();
    assert!(stats.resident_peak <= 4);
    assert_eq!(
        stats.evictions, 0,
        "a pool as large as the client set never evicts: {stats:?}"
    );
    assert_eq!(stats.misses, 4, "exactly one cold handshake per client");
    assert!(
        stats.hit_rate() > 0.95,
        "steady state must be hits: {stats:?}"
    );
}

#[test]
fn engine_kill_with_ras_push_loses_no_ops() {
    let mut w = WorldSpec::cluster(4)
        .clients(Clients::host(8))
        .replication(2)
        .jobs(1)
        .region(REGION)
        .build_incast();
    // Only the pipelined path carries the stale-map retry ladder.
    w.set_pipelined(true);
    let after = w.total_ops() + 48;
    w.set_fault_plan(FaultPlan::kill_after(1, after, SimDuration::from_millis(1)));

    let spec = write_spec(w.total_jobs());
    let report = run_fio(&mut w, &spec);
    assert_eq!(
        report.io.errors.get(),
        0,
        "a kill under incast must complete with zero failed ops"
    );
    let retry = w.retry_stats();
    assert!(
        retry.retries >= 1,
        "the delayed push must drive the ladder: {retry:?}"
    );
    assert_eq!(retry.exhausted, 0, "no op may exhaust its budget");
    assert!(
        w.fences() >= 1,
        "clients racing the pushed revision must fence at least once"
    );
}

#[test]
fn incast_worlds_replay_bit_identically() {
    let run = || {
        let mut w = WorldSpec::cluster(2)
            .clients(Clients::host(16))
            .jobs(1)
            .region(REGION)
            .pool_capacity(4)
            .build_incast();
        let spec = incast_spec(w.total_jobs());
        let r = run_fio(&mut w, &spec);
        (
            r.io.meter.ops(),
            r.gib_per_sec().to_bits(),
            w.per_client_ops(),
            w.conn_pool_stats(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn offloaded_incast_clients_warm_their_own_caches() {
    // Three real DPU clients, each with its own 64 MiB read-cache carve,
    // re-reading small blocks from a shared replicated cluster: every
    // client must make progress, every cache must fill and hit, and the
    // RAS push after a kill must sweep all of them without a failed op.
    let mut w = WorldSpec::cluster(3)
        .replication(2)
        .clients(Clients::offloaded(3))
        .jobs(1)
        .region(REGION)
        .dpu_cache(64 << 20)
        .build_incast();
    assert_eq!(w.client_count(), 3);

    let spec = JobSpec::new(RwMode::RandRead, 16 << 10, w.total_jobs())
        .iodepth(2)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(20))
        .seed(9);
    let report = run_fio(&mut w, &spec);
    assert_eq!(report.io.errors.get(), 0, "offloaded incast must not error");
    assert!(w.per_client_ops().iter().all(|&o| o > 0));
    let s = w.cache_stats();
    assert!(s.fills > 0 && s.hits > 0, "caches must warm: {s:?}");

    // A kill bumps the map revision; the push fan-out must invalidate
    // every client's resident entries.
    let before = w.cache_stats().invalidations;
    w.kill_engine(ros2_sim::SimTime::ZERO, 0).unwrap();
    let spec2 = JobSpec::new(RwMode::RandRead, 16 << 10, w.total_jobs())
        .iodepth(2)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(20))
        .seed(11);
    let report2 = run_fio(&mut w, &spec2);
    assert_eq!(report2.io.errors.get(), 0, "post-kill reads must not error");
    assert!(
        w.cache_stats().invalidations > before,
        "the RAS push must sweep stale-map entries: {:?}",
        w.cache_stats()
    );
}
