//! Calibration probe: prints headline numbers for each figure shape.
//! (Development aid; the polished harnesses live in `ros2-bench`.)

use ros2_fio::{run_fio, JobSpec, LocalFioWorld, RwMode, SpdkFioWorld, WorldSpec};
use ros2_hw::{ClientPlacement, Transport};
use ros2_nvme::DataMode;
use ros2_sim::SimDuration;

fn windows() -> (SimDuration, SimDuration) {
    (SimDuration::from_millis(100), SimDuration::from_millis(300))
}

fn main() {
    let (ramp, runtime) = windows();
    println!("=== Fig 3: local io_uring ===");
    for ssds in [1usize, 4] {
        for rw in RwMode::ALL {
            for jobs in [1usize, 2, 4, 8, 16] {
                let mut w = LocalFioWorld::new(ssds, jobs, 1 << 30, DataMode::Null);
                let r1m = run_fio(
                    &mut w,
                    &JobSpec::new(rw, 1 << 20, jobs).windows(ramp, runtime),
                );
                let mut w = LocalFioWorld::new(ssds, jobs, 1 << 30, DataMode::Null);
                let r4k = run_fio(&mut w, &JobSpec::new(rw, 4096, jobs).windows(ramp, runtime));
                print!(
                    " {}ssd {:>9} j{:<2} 1M={:>5.2}GiB/s 4K={:>6.0}K |",
                    ssds,
                    rw.label(),
                    jobs,
                    r1m.gib_per_sec(),
                    r4k.kiops()
                );
            }
            println!();
        }
    }

    println!("=== Fig 4: remote SPDK (jobs=cores, 1 SSD) ===");
    for transport in [Transport::Tcp, Transport::Rdma] {
        for rw in [RwMode::Read, RwMode::RandRead, RwMode::Write] {
            for cores in [1usize, 2, 4, 8, 16] {
                let mut w =
                    SpdkFioWorld::new(transport, cores, cores, cores, 1 << 30, DataMode::Null);
                let r1m = run_fio(
                    &mut w,
                    &JobSpec::new(rw, 1 << 20, cores).windows(ramp, runtime),
                );
                let mut w =
                    SpdkFioWorld::new(transport, cores, cores, cores, 1 << 30, DataMode::Null);
                let r4k = run_fio(
                    &mut w,
                    &JobSpec::new(rw, 4096, cores)
                        .iodepth(32)
                        .windows(ramp, runtime),
                );
                print!(
                    " {} {:>8} c{:<2} 1M={:>5.2} 4K={:>6.0}K |",
                    transport.label(),
                    rw.label(),
                    cores,
                    r1m.gib_per_sec(),
                    r4k.kiops()
                );
            }
            println!();
        }
    }

    println!("=== Fig 5: DFS end-to-end (16 jobs) ===");
    for transport in [Transport::Tcp, Transport::Rdma] {
        for placement in [ClientPlacement::Host, ClientPlacement::Dpu] {
            for ssds in [1usize, 4] {
                for rw in RwMode::ALL {
                    let jobs = 16;
                    let dfs = || {
                        WorldSpec::single(placement)
                            .transport(transport)
                            .ssds(ssds)
                            .jobs(jobs)
                            .region(256 << 20)
                            .mode(DataMode::Null)
                            .build_dfs()
                    };
                    let mut w = dfs();
                    let r1m = run_fio(
                        &mut w,
                        &JobSpec::new(rw, 1 << 20, jobs)
                            .region(256 << 20)
                            .windows(ramp, runtime),
                    );
                    let mut w = dfs();
                    let r4k = run_fio(
                        &mut w,
                        &JobSpec::new(rw, 4096, jobs)
                            .region(256 << 20)
                            .windows(ramp, runtime),
                    );
                    println!(
                        " {:>4} {:?} {}ssd {:>9}: 1M={:>6.2} GiB/s 4K={:>6.0}K",
                        transport.label(),
                        placement,
                        ssds,
                        rw.label(),
                        r1m.gib_per_sec(),
                        r4k.kiops()
                    );
                }
            }
        }
    }
}
