//! The io_uring-like asynchronous local I/O engine.
//!
//! One [`Ring`] per FIO job models the submission/completion queue pair the
//! job owns. A request flows through four stages, exactly the Linux
//! `io_uring` + block-layer path the paper's Fig. 3 baselines exercise:
//!
//! 1. **job core** — submission syscall share + per-byte DMA mapping (this
//!    serializes per job, bounding per-job IOPS);
//! 2. **shared block layer** — a single serialized stage shared by *all*
//!    jobs and devices (~1.6 µs/op). This is the "software/host-path limit"
//!    that caps local 4 KiB IOPS near 600 K regardless of drive count;
//! 3. **the NVMe device** — channel occupancy + access latency;
//! 4. **job core again** — CQE reap.
//!
//! The engine also performs adjacency detection, passing a sequential hint
//! to the device (read-ahead / write-combining), which differentiates
//! sequential from random 4 KiB behaviour.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bytes::Bytes;
use ros2_hw::{per_byte, HostPathModel};
use ros2_nvme::{NvmeArray, NvmeCmd, NvmeError};
use ros2_sim::{ServerPool, SimTime};

/// One I/O request as a job issues it.
#[derive(Clone, Debug)]
pub struct IoRequest {
    /// Target device index within the array.
    pub dev: usize,
    /// Write (true) or read (false).
    pub write: bool,
    /// Starting LBA.
    pub slba: u64,
    /// Blocks.
    pub nlb: u32,
    /// Payload for writes.
    pub data: Option<Bytes>,
}

/// A completed request.
#[derive(Clone, Debug)]
pub struct IoCompletion {
    /// Instant the job observes completion (after CQE reap).
    pub at: SimTime,
    /// Read data.
    pub data: Option<Bytes>,
}

/// Submission failures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IoUringError {
    /// The job's submission queue is full.
    SqFull,
    /// The device rejected the command.
    Nvme(NvmeError),
}

/// Per-job ring state.
#[derive(Debug)]
struct Ring {
    /// The job's core: submission and reap serialize here.
    core: ServerPool,
    /// Completion times of outstanding requests (SQ depth accounting).
    outstanding: BinaryHeap<Reverse<SimTime>>,
    /// `(device, next_lba)` of the previous request, for adjacency hints.
    last: Option<(usize, u64)>,
    submitted: u64,
    completed: u64,
}

/// The engine: one ring per job over a shared block layer and NVMe array.
#[derive(Debug)]
pub struct IoUringEngine {
    model: HostPathModel,
    /// The kernel block layer: one serialized server shared by all rings.
    shared: ServerPool,
    rings: Vec<Ring>,
    sq_depth: usize,
}

impl IoUringEngine {
    /// Creates an engine with `jobs` rings of `sq_depth` entries each.
    pub fn new(model: HostPathModel, jobs: usize, sq_depth: usize) -> Self {
        assert!(jobs > 0 && sq_depth > 0);
        IoUringEngine {
            model,
            shared: ServerPool::new(1),
            rings: (0..jobs)
                .map(|_| Ring {
                    core: ServerPool::new(1),
                    outstanding: BinaryHeap::new(),
                    last: None,
                    submitted: 0,
                    completed: 0,
                })
                .collect(),
            sq_depth,
        }
    }

    /// Number of rings (jobs).
    pub fn jobs(&self) -> usize {
        self.rings.len()
    }

    /// The host-path model in use.
    pub fn model(&self) -> &HostPathModel {
        &self.model
    }

    /// Outstanding requests on `job`'s ring at `now`.
    pub fn inflight(&mut self, job: usize, now: SimTime) -> usize {
        let ring = &mut self.rings[job];
        while let Some(&Reverse(t)) = ring.outstanding.peek() {
            if t <= now {
                ring.outstanding.pop();
                ring.completed += 1;
            } else {
                break;
            }
        }
        ring.outstanding.len()
    }

    /// Submits `req` on `job`'s ring against `array` at `now`.
    pub fn submit(
        &mut self,
        now: SimTime,
        job: usize,
        array: &mut NvmeArray,
        req: IoRequest,
    ) -> Result<IoCompletion, IoUringError> {
        if self.inflight(job, now) >= self.sq_depth {
            return Err(IoUringError::SqFull);
        }
        let bytes = req.nlb as u64 * ros2_hw::LBA_SIZE;

        // Stage 1: job core — submission + DMA mapping. The CQE-reap cost
        // of the *previous* completion is charged here too: charging it at
        // completion time would reserve the core in the future and block
        // earlier submissions (time-calculator ordering hazard); amortizing
        // it onto the next submission is equivalent in a closed loop.
        let ring = &mut self.rings[job];
        let submit_cost = self.model.per_op_job
            + self.model.per_op_reap
            + per_byte(bytes, self.model.ps_per_byte);
        let g_core = ring.core.submit(now, submit_cost);

        // Stage 2: shared kernel block layer.
        let g_shared = self.shared.submit(g_core.finish, self.model.per_op_shared);

        // Adjacency detection for the sequential hint.
        let sequential = ring.last == Some((req.dev, req.slba));
        ring.last = Some((req.dev, req.slba + req.nlb as u64));

        // Stage 3: the device.
        let mut cmd = if req.write {
            let data = req.data.clone().unwrap_or_else(|| {
                // Writes without payload are disallowed by the device; give
                // the device a correctly sized zero buffer only when the
                // caller runs descriptor-style workloads.
                Bytes::from(vec![0u8; bytes as usize])
            });
            NvmeCmd::write(req.slba, data)
        } else {
            NvmeCmd::read(req.slba, req.nlb)
        };
        cmd.sequential = sequential;
        let dev_done = array
            .submit(req.dev, g_shared.finish, cmd)
            .map_err(IoUringError::Nvme)?;

        // Stage 4: CQE reap latency (its CPU time is charged with the next
        // submission — see stage 1).
        let done_at = dev_done.at + self.model.per_op_reap;

        let ring = &mut self.rings[job];
        ring.outstanding.push(Reverse(done_at));
        ring.submitted += 1;

        Ok(IoCompletion {
            at: done_at,
            data: dev_done.data,
        })
    }

    /// `(submitted, completed)` counters for `job` (completed advances as
    /// `inflight` observes the clock).
    pub fn counters(&self, job: usize) -> (u64, u64) {
        (self.rings[job].submitted, self.rings[job].completed)
    }

    /// Total operations pushed through the shared block-layer stage.
    pub fn shared_ops(&self) -> u64 {
        self.shared.jobs_served()
    }

    /// Resets every ring and the shared stage to t=0 (between
    /// preconditioning and measurement).
    pub fn reset_timing(&mut self) {
        self.shared.reset_timing();
        for r in &mut self.rings {
            r.core.reset_timing();
            r.outstanding.clear();
            r.last = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_hw::{NvmeModel, LBA_SIZE};
    use ros2_nvme::DataMode;

    fn setup(jobs: usize) -> (IoUringEngine, NvmeArray) {
        (
            IoUringEngine::new(HostPathModel::iouring(), jobs, 32),
            NvmeArray::new(NvmeModel::enterprise_1600(), 1, DataMode::Stored),
        )
    }

    fn read4k(slba: u64) -> IoRequest {
        IoRequest {
            dev: 0,
            write: false,
            slba,
            nlb: 1,
            data: None,
        }
    }

    #[test]
    fn data_round_trips_through_engine() {
        let (mut eng, mut array) = setup(1);
        let payload = Bytes::from(vec![0x5A; LBA_SIZE as usize]);
        let w = eng
            .submit(
                SimTime::ZERO,
                0,
                &mut array,
                IoRequest {
                    dev: 0,
                    write: true,
                    slba: 3,
                    nlb: 1,
                    data: Some(payload.clone()),
                },
            )
            .unwrap();
        let r = eng.submit(w.at, 0, &mut array, read4k(3)).unwrap();
        assert_eq!(r.data.unwrap(), payload);
    }

    #[test]
    fn latency_composes_all_stages() {
        let (mut eng, mut array) = setup(1);
        let c = eng.submit(SimTime::ZERO, 0, &mut array, read4k(0)).unwrap();
        let m = HostPathModel::iouring();
        let dev = NvmeModel::enterprise_1600();
        let expected = m.per_op_job
            + m.per_op_reap // previous completion's reap, amortized at submit
            + per_byte(LBA_SIZE, m.ps_per_byte)
            + m.per_op_shared
            + dev.occupancy(LBA_SIZE, false)
            + dev.access(false)
            + m.per_op_reap; // this completion's reap latency
        assert_eq!(c.at, SimTime::ZERO + expected);
        // The whole 4 KiB random-read path sits near 90 us, giving the
        // ~80-90 K IOPS at 1 job x QD8 seen in Fig. 3b.
        let us = expected.as_micros();
        assert!((85..95).contains(&us), "4k path {us}us");
    }

    #[test]
    fn sequential_hint_lowers_latency() {
        let (mut eng, mut array) = setup(1);
        let c1 = eng
            .submit(SimTime::ZERO, 0, &mut array, read4k(10))
            .unwrap();
        // Adjacent to the previous request: gets the read-ahead latency.
        let c2 = eng.submit(c1.at, 0, &mut array, read4k(11)).unwrap();
        // Non-adjacent: full random access latency.
        let c3 = eng.submit(c2.at, 0, &mut array, read4k(500)).unwrap();
        let lat2 = c2.at.saturating_since(c1.at);
        let lat3 = c3.at.saturating_since(c2.at);
        assert!(lat2 < lat3, "seq {lat2} !< rand {lat3}");
    }

    #[test]
    fn sq_depth_is_enforced() {
        let (mut eng, mut array) = setup(1);
        for i in 0..32 {
            eng.submit(SimTime::ZERO, 0, &mut array, read4k(i * 8))
                .unwrap();
        }
        assert_eq!(
            eng.submit(SimTime::ZERO, 0, &mut array, read4k(0))
                .unwrap_err(),
            IoUringError::SqFull
        );
        // Once completions drain the ring reopens.
        assert!(eng
            .submit(SimTime::from_secs(1), 0, &mut array, read4k(0))
            .is_ok());
    }

    #[test]
    fn shared_stage_serializes_across_jobs() {
        let (mut eng, mut array) = setup(4);
        let mut completions = Vec::new();
        for job in 0..4 {
            completions.push(
                eng.submit(SimTime::ZERO, job, &mut array, read4k(job as u64 * 100))
                    .unwrap(),
            );
        }
        // Four jobs submitted simultaneously; the shared stage spaces device
        // submissions by at least per_op_shared, so completions spread.
        let mut ats: Vec<_> = completions.iter().map(|c| c.at).collect();
        ats.sort();
        let m = HostPathModel::iouring();
        for pair in ats.windows(2) {
            assert!(
                pair[1].saturating_since(pair[0]) + ros2_sim::SimDuration::from_nanos(1)
                    >= m.per_op_shared
            );
        }
        assert_eq!(eng.shared_ops(), 4);
    }

    #[test]
    fn per_byte_cost_scales_with_block_size() {
        let (mut eng, mut array) = setup(2);
        let small = eng.submit(SimTime::ZERO, 0, &mut array, read4k(0)).unwrap();
        let big = eng
            .submit(
                SimTime::ZERO,
                1,
                &mut array,
                IoRequest {
                    dev: 0,
                    write: false,
                    slba: 1000,
                    nlb: 256, // 1 MiB
                    data: None,
                },
            )
            .unwrap();
        assert!(big.at > small.at);
    }

    #[test]
    fn counters_track_lifecycle() {
        let (mut eng, mut array) = setup(1);
        let c = eng.submit(SimTime::ZERO, 0, &mut array, read4k(0)).unwrap();
        assert_eq!(eng.counters(0), (1, 0));
        assert_eq!(eng.inflight(0, c.at), 0);
        assert_eq!(eng.counters(0), (1, 1));
    }
}
