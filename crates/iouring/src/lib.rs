//! # ros2-iouring — io_uring-like local I/O engine
//!
//! The local baseline path of the paper's Fig. 3: FIO jobs submit
//! POSIX-style block I/O through per-job rings, a shared kernel block-layer
//! stage, and the simulated NVMe devices. The shared stage reproduces the
//! paper's "software/host-path limit" (~600 K 4 KiB IOPS regardless of drive
//! count); adjacency detection reproduces the sequential-vs-random 4 KiB
//! split.

#![warn(missing_docs)]

pub mod engine;

pub use engine::{IoCompletion, IoRequest, IoUringEngine, IoUringError};
