//! The per-node RDMA device context: protection domains, memory regions,
//! queue pairs, and the NIC-side enforcement of one-sided operations.
//!
//! This is where the paper's §2.3 security model lives. Every remote access
//! is checked — rkey liveness, expiry, revocation, PD match against the
//! *target-side* QP, direction rights, and bounds — before a single byte
//! moves. A violation increments the device's [`ViolationStats`] and throws
//! the target QP into the ERROR state, exactly as an RC NIC would.

use std::collections::HashMap;

use bytes::Bytes;
use ros2_sim::{SimRng, SimTime};

use crate::memory::NodeMemory;
use crate::types::{
    AccessFlags, Expiry, LKey, MemAddr, MemoryDomain, MrId, NodeId, PdId, QpId, QpState, QpType,
    RKey, VerbsError, ViolationStats,
};

/// A protection domain: the tenant boundary.
#[derive(Clone, Debug)]
pub struct ProtectionDomain {
    /// Owning tenant label (for reports; enforcement is by PdId).
    pub tenant: String,
}

/// A registered memory region.
#[derive(Clone, Debug)]
pub struct MemoryRegion {
    /// Owning protection domain.
    pub pd: PdId,
    /// Base address within the node's memory.
    pub addr: MemAddr,
    /// Registered length.
    pub len: u64,
    /// Access rights.
    pub access: AccessFlags,
    /// Remote key.
    pub rkey: RKey,
    /// Local key.
    pub lkey: LKey,
    /// Scoped-rkey expiry (§2.3 mitigation: short-lived scoped rkeys).
    pub expiry: Expiry,
    /// Which silicon the pages live on.
    pub domain: MemoryDomain,
    /// Whether the rkey was administratively revoked.
    pub revoked: bool,
}

/// A queue pair.
#[derive(Clone, Debug)]
pub struct QueuePair {
    /// Owning protection domain.
    pub pd: PdId,
    /// Service type.
    pub qp_type: QpType,
    /// Connection state.
    pub state: QpState,
    /// The connected peer, once RTR/RTS.
    pub peer: Option<(NodeId, QpId)>,
}

/// The device context for one node.
#[derive(Debug)]
pub struct RdmaDevice {
    node: NodeId,
    memory: NodeMemory,
    pds: HashMap<PdId, ProtectionDomain>,
    mrs: HashMap<MrId, MemoryRegion>,
    qps: HashMap<QpId, QueuePair>,
    rkey_index: HashMap<RKey, MrId>,
    lkey_index: HashMap<LKey, MrId>,
    next_pd: u32,
    next_mr: u32,
    next_qp: u32,
    rng: SimRng,
    peermem: bool,
    violations: ViolationStats,
    /// Completed one-sided operations (ops, bytes) for reporting.
    pub remote_ops: (u64, u64),
}

impl RdmaDevice {
    /// Creates a device for `node` with a registered-memory budget.
    pub fn new(node: NodeId, mem_budget: u64, rng: SimRng) -> Self {
        RdmaDevice {
            node,
            memory: NodeMemory::new(mem_budget),
            pds: HashMap::new(),
            mrs: HashMap::new(),
            qps: HashMap::new(),
            rkey_index: HashMap::new(),
            lkey_index: HashMap::new(),
            next_pd: 1,
            next_mr: 1,
            next_qp: 1,
            rng,
            peermem: false,
            violations: ViolationStats::default(),
            remote_ops: (0, 0),
        }
    }

    /// This device's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Enables GPU-domain registrations (loading `nvidia-peermem`, §3.5).
    pub fn enable_peermem(&mut self) {
        self.peermem = true;
    }

    /// Security violation counters.
    pub fn violations(&self) -> &ViolationStats {
        &self.violations
    }

    // ---- protection domains -------------------------------------------

    /// Allocates a protection domain for `tenant`.
    pub fn alloc_pd(&mut self, tenant: impl Into<String>) -> PdId {
        let id = PdId(self.next_pd);
        self.next_pd += 1;
        self.pds.insert(
            id,
            ProtectionDomain {
                tenant: tenant.into(),
            },
        );
        id
    }

    /// The tenant label of a PD.
    pub fn pd_tenant(&self, pd: PdId) -> Option<&str> {
        self.pds.get(&pd).map(|p| p.tenant.as_str())
    }

    // ---- buffers --------------------------------------------------------

    /// Allocates a DMA-able buffer. GPU-domain buffers require peermem.
    pub fn alloc_buffer(&mut self, len: u64, domain: MemoryDomain) -> Result<MemAddr, VerbsError> {
        if domain == MemoryDomain::GpuHbm && !self.peermem {
            return Err(VerbsError::NoPeermem);
        }
        self.memory.alloc(len, domain)
    }

    /// Application-side write into its own buffer (not a remote op; one
    /// copy — the caller only holds a borrowed slice).
    pub fn write_local(&mut self, addr: MemAddr, data: &[u8]) -> Result<(), VerbsError> {
        if !self.memory.in_bounds(addr, data.len() as u64) {
            return Err(VerbsError::OutOfBounds);
        }
        self.memory.write_slice(addr, data);
        Ok(())
    }

    /// Application-side zero-copy write: the buffer adopts the caller's
    /// `Bytes` handle (the staging pattern the DAOS client hot path uses).
    pub fn write_local_bytes(&mut self, addr: MemAddr, data: &Bytes) -> Result<(), VerbsError> {
        if !self.memory.in_bounds(addr, data.len() as u64) {
            return Err(VerbsError::OutOfBounds);
        }
        self.memory.write(addr, data);
        Ok(())
    }

    /// Application-side read of its own buffer (zero-copy when the range
    /// was written contiguously).
    pub fn read_local(&mut self, addr: MemAddr, len: usize) -> Result<Bytes, VerbsError> {
        if !self.memory.in_bounds(addr, len as u64) {
            return Err(VerbsError::OutOfBounds);
        }
        Ok(self.memory.read(addr, len))
    }

    /// Frees a buffer.
    pub fn free_buffer(&mut self, addr: MemAddr) -> Result<(), VerbsError> {
        self.memory.free(addr)
    }

    /// Bytes of registered memory in use.
    pub fn memory_used(&self) -> u64 {
        self.memory.used()
    }

    /// Data-plane (copy vs zero-copy) counters for this node's registered
    /// memory.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        self.memory.data_plane_stats()
    }

    // ---- memory regions -------------------------------------------------

    /// Registers `[addr, addr+len)` in `pd` with `access` rights and an
    /// optional expiry. Returns the MR handle plus its keys.
    pub fn reg_mr(
        &mut self,
        pd: PdId,
        addr: MemAddr,
        len: u64,
        access: AccessFlags,
        expiry: Expiry,
    ) -> Result<(MrId, RKey, LKey), VerbsError> {
        if !self.pds.contains_key(&pd) {
            return Err(VerbsError::BadHandle);
        }
        if !self.memory.in_bounds(addr, len) {
            return Err(VerbsError::OutOfBounds);
        }
        let domain = self
            .memory
            .domain_of_containing(addr)
            .ok_or(VerbsError::OutOfBounds)?;
        if domain == MemoryDomain::GpuHbm && !self.peermem {
            return Err(VerbsError::NoPeermem);
        }
        let id = MrId(self.next_mr);
        self.next_mr += 1;
        let rkey = RKey(self.rng.next_u64());
        let lkey = LKey(self.rng.next_u64());
        self.mrs.insert(
            id,
            MemoryRegion {
                pd,
                addr,
                len,
                access,
                rkey,
                lkey,
                expiry,
                domain,
                revoked: false,
            },
        );
        self.rkey_index.insert(rkey, id);
        self.lkey_index.insert(lkey, id);
        Ok((id, rkey, lkey))
    }

    /// Revokes the MR's rkey without deregistering (fast-path kill switch).
    pub fn revoke_rkey(&mut self, mr: MrId) -> Result<(), VerbsError> {
        let region = self.mrs.get_mut(&mr).ok_or(VerbsError::BadHandle)?;
        region.revoked = true;
        Ok(())
    }

    /// Deregisters a region entirely.
    pub fn dereg_mr(&mut self, mr: MrId) -> Result<(), VerbsError> {
        let region = self.mrs.remove(&mr).ok_or(VerbsError::BadHandle)?;
        self.rkey_index.remove(&region.rkey);
        self.lkey_index.remove(&region.lkey);
        Ok(())
    }

    /// The region behind an MR handle.
    pub fn mr(&self, mr: MrId) -> Option<&MemoryRegion> {
        self.mrs.get(&mr)
    }

    // ---- queue pairs ------------------------------------------------------

    /// Creates a QP in `pd` (state INIT).
    pub fn create_qp(&mut self, pd: PdId, qp_type: QpType) -> Result<QpId, VerbsError> {
        if !self.pds.contains_key(&pd) {
            return Err(VerbsError::BadHandle);
        }
        let id = QpId(self.next_qp);
        self.next_qp += 1;
        self.qps.insert(
            id,
            QueuePair {
                pd,
                qp_type,
                state: QpState::Init,
                peer: None,
            },
        );
        Ok(id)
    }

    /// Connects a QP to a remote peer (INIT → RTR → RTS collapsed, as UCX
    /// does during wireup).
    pub fn connect_qp(
        &mut self,
        qp: QpId,
        peer_node: NodeId,
        peer_qp: QpId,
    ) -> Result<(), VerbsError> {
        let q = self.qps.get_mut(&qp).ok_or(VerbsError::BadHandle)?;
        if q.state != QpState::Init {
            return Err(VerbsError::QpNotReady);
        }
        q.peer = Some((peer_node, peer_qp));
        q.state = QpState::ReadyToSend;
        Ok(())
    }

    /// The QP's current state.
    pub fn qp_state(&self, qp: QpId) -> Option<QpState> {
        self.qps.get(&qp).map(|q| q.state)
    }

    /// Number of QPs currently allocated on this device. RC connection
    /// state is the scarce on-NIC resource (ICM cache), so clients are
    /// expected to keep this O(peers), not O(jobs × peers).
    pub fn qp_count(&self) -> usize {
        self.qps.len()
    }

    /// The QP's protection domain.
    pub fn qp_pd(&self, qp: QpId) -> Option<PdId> {
        self.qps.get(&qp).map(|q| q.pd)
    }

    /// Resets an errored QP back to INIT (administrative recovery).
    pub fn reset_qp(&mut self, qp: QpId) -> Result<(), VerbsError> {
        let q = self.qps.get_mut(&qp).ok_or(VerbsError::BadHandle)?;
        q.state = QpState::Init;
        q.peer = None;
        Ok(())
    }

    /// Validates that the initiator may use `lkey` over `[addr, addr+len)`.
    pub fn check_local_access(
        &self,
        lkey: LKey,
        addr: MemAddr,
        len: u64,
    ) -> Result<(), VerbsError> {
        let mr_id = self.lkey_index.get(&lkey).ok_or(VerbsError::InvalidLkey)?;
        let mr = &self.mrs[mr_id];
        if addr < mr.addr || addr + len > mr.addr + mr.len {
            return Err(VerbsError::OutOfBounds);
        }
        Ok(())
    }

    // ---- one-sided execution (target side) ------------------------------

    /// Full §2.3 admission check for a remote access arriving on `target_qp`
    /// presenting `rkey` over `[addr, addr+len)`.
    fn check_remote(
        &mut self,
        now: SimTime,
        target_qp: QpId,
        rkey: RKey,
        addr: MemAddr,
        len: u64,
        write: bool,
    ) -> Result<MrId, VerbsError> {
        let qp = self.qps.get(&target_qp).ok_or(VerbsError::BadHandle)?;
        if qp.state != QpState::ReadyToSend && qp.state != QpState::ReadyToReceive {
            return Err(VerbsError::QpNotReady);
        }
        let check = (|| {
            let mr_id = *self.rkey_index.get(&rkey).ok_or(VerbsError::InvalidRkey)?;
            let mr = &self.mrs[&mr_id];
            if mr.revoked {
                return Err(VerbsError::RkeyRevoked);
            }
            if mr.expiry.expired(now) {
                return Err(VerbsError::RkeyExpired);
            }
            // The tenant boundary: the MR must live in the same PD as the
            // QP the request arrived on.
            if mr.pd != qp.pd {
                return Err(VerbsError::PdMismatch);
            }
            if write && !mr.access.remote_write {
                return Err(VerbsError::AccessDenied);
            }
            if !write && !mr.access.remote_read {
                return Err(VerbsError::AccessDenied);
            }
            if addr < mr.addr || addr + len > mr.addr + mr.len {
                return Err(VerbsError::OutOfBounds);
            }
            Ok(mr_id)
        })();
        if let Err(e) = check {
            self.violations.record(e);
            // Protection faults kill the QP, as on real RC hardware.
            if let Some(q) = self.qps.get_mut(&target_qp) {
                q.state = QpState::Error;
            }
            return Err(e);
        }
        check
    }

    /// Executes an RDMA WRITE landing on this device: places `data` at
    /// `addr` with zero target-CPU involvement.
    pub fn execute_remote_write(
        &mut self,
        now: SimTime,
        target_qp: QpId,
        rkey: RKey,
        addr: MemAddr,
        data: &Bytes,
    ) -> Result<(), VerbsError> {
        self.check_remote(now, target_qp, rkey, addr, data.len() as u64, true)?;
        self.memory.write(addr, data);
        self.remote_ops.0 += 1;
        self.remote_ops.1 += data.len() as u64;
        Ok(())
    }

    /// Executes an RDMA READ served by this device.
    pub fn execute_remote_read(
        &mut self,
        now: SimTime,
        target_qp: QpId,
        rkey: RKey,
        addr: MemAddr,
        len: u64,
    ) -> Result<Bytes, VerbsError> {
        self.check_remote(now, target_qp, rkey, addr, len, false)?;
        self.remote_ops.0 += 1;
        self.remote_ops.1 += len;
        Ok(self.memory.read(addr, len as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_sim::SimDuration;

    fn dev() -> RdmaDevice {
        RdmaDevice::new(NodeId(0), 1 << 30, SimRng::new(7))
    }

    /// Standard two-tenant fixture: tenant A with a remote-writable MR and a
    /// connected QP; tenant B with its own QP.
    fn two_tenants(d: &mut RdmaDevice) -> (QpId, RKey, MemAddr, QpId) {
        let pd_a = d.alloc_pd("tenant-a");
        let pd_b = d.alloc_pd("tenant-b");
        let buf = d.alloc_buffer(4096, MemoryDomain::HostDram).unwrap();
        let (_, rkey, _) = d
            .reg_mr(pd_a, buf, 4096, AccessFlags::remote_rw(), Expiry::Never)
            .unwrap();
        let qp_a = d.create_qp(pd_a, QpType::Rc).unwrap();
        d.connect_qp(qp_a, NodeId(1), QpId(99)).unwrap();
        let qp_b = d.create_qp(pd_b, QpType::Rc).unwrap();
        d.connect_qp(qp_b, NodeId(2), QpId(98)).unwrap();
        (qp_a, rkey, buf, qp_b)
    }

    #[test]
    fn one_sided_write_and_read_round_trip() {
        let mut d = dev();
        let (qp, rkey, addr, _) = two_tenants(&mut d);
        let payload = Bytes::from_static(b"zero copy");
        d.execute_remote_write(SimTime::ZERO, qp, rkey, addr, &payload)
            .unwrap();
        let back = d
            .execute_remote_read(SimTime::ZERO, qp, rkey, addr, 9)
            .unwrap();
        assert_eq!(back, payload);
        assert_eq!(d.remote_ops, (2, 18));
    }

    #[test]
    fn cross_tenant_access_is_denied_and_counted() {
        let mut d = dev();
        let (_, rkey_a, addr, qp_b) = two_tenants(&mut d);
        // Tenant B stole tenant A's rkey; the PD check stops the access.
        let err = d
            .execute_remote_read(SimTime::ZERO, qp_b, rkey_a, addr, 16)
            .unwrap_err();
        assert_eq!(err, VerbsError::PdMismatch);
        assert_eq!(d.violations().pd_mismatch, 1);
        // And the offending QP is dead.
        assert_eq!(d.qp_state(qp_b), Some(QpState::Error));
    }

    #[test]
    fn errored_qp_rejects_even_valid_requests() {
        let mut d = dev();
        let (qp_a, rkey, addr, qp_b) = two_tenants(&mut d);
        let _ = d.execute_remote_read(SimTime::ZERO, qp_b, rkey, addr, 1);
        assert_eq!(
            d.execute_remote_read(SimTime::ZERO, qp_b, rkey, addr, 1)
                .unwrap_err(),
            VerbsError::QpNotReady
        );
        // The victim tenant's own QP still works.
        assert!(d
            .execute_remote_read(SimTime::ZERO, qp_a, rkey, addr, 1)
            .is_ok());
        // Reset recovers the QP to INIT.
        d.reset_qp(qp_b).unwrap();
        assert_eq!(d.qp_state(qp_b), Some(QpState::Init));
    }

    #[test]
    fn expired_rkey_is_rejected() {
        let mut d = dev();
        let pd = d.alloc_pd("t");
        let buf = d.alloc_buffer(1024, MemoryDomain::HostDram).unwrap();
        let expiry = Expiry::At(SimTime::from_secs(1));
        let (_, rkey, _) = d
            .reg_mr(pd, buf, 1024, AccessFlags::remote_rw(), expiry)
            .unwrap();
        let qp = d.create_qp(pd, QpType::Rc).unwrap();
        d.connect_qp(qp, NodeId(1), QpId(1)).unwrap();
        assert!(d
            .execute_remote_read(SimTime::from_millis(999), qp, rkey, buf, 8)
            .is_ok());
        let late = SimTime::from_secs(1) + SimDuration::from_nanos(1);
        assert_eq!(
            d.execute_remote_read(late, qp, rkey, buf, 8).unwrap_err(),
            VerbsError::RkeyExpired
        );
        assert_eq!(d.violations().expired_rkey, 1);
    }

    #[test]
    fn revoked_rkey_is_rejected() {
        let mut d = dev();
        let pd = d.alloc_pd("t");
        let buf = d.alloc_buffer(1024, MemoryDomain::HostDram).unwrap();
        let (mr, rkey, _) = d
            .reg_mr(pd, buf, 1024, AccessFlags::remote_rw(), Expiry::Never)
            .unwrap();
        let qp = d.create_qp(pd, QpType::Rc).unwrap();
        d.connect_qp(qp, NodeId(1), QpId(1)).unwrap();
        d.revoke_rkey(mr).unwrap();
        assert_eq!(
            d.execute_remote_read(SimTime::ZERO, qp, rkey, buf, 8)
                .unwrap_err(),
            VerbsError::RkeyRevoked
        );
    }

    #[test]
    fn direction_rights_enforced() {
        let mut d = dev();
        let pd = d.alloc_pd("t");
        let buf = d.alloc_buffer(1024, MemoryDomain::HostDram).unwrap();
        let (_, rkey, _) = d
            .reg_mr(pd, buf, 1024, AccessFlags::remote_read(), Expiry::Never)
            .unwrap();
        let qp = d.create_qp(pd, QpType::Rc).unwrap();
        d.connect_qp(qp, NodeId(1), QpId(1)).unwrap();
        assert!(d
            .execute_remote_read(SimTime::ZERO, qp, rkey, buf, 8)
            .is_ok());
        d.reset_qp(qp).unwrap();
        d.connect_qp(qp, NodeId(1), QpId(1)).unwrap();
        let err = d
            .execute_remote_write(SimTime::ZERO, qp, rkey, buf, &Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(err, VerbsError::AccessDenied);
    }

    #[test]
    fn bounds_enforced_within_region() {
        let mut d = dev();
        let pd = d.alloc_pd("t");
        let buf = d.alloc_buffer(4096, MemoryDomain::HostDram).unwrap();
        // Register only the middle 1 KiB.
        let (_, rkey, _) = d
            .reg_mr(
                pd,
                buf + 1024,
                1024,
                AccessFlags::remote_rw(),
                Expiry::Never,
            )
            .unwrap();
        let qp = d.create_qp(pd, QpType::Rc).unwrap();
        d.connect_qp(qp, NodeId(1), QpId(1)).unwrap();
        assert!(d
            .execute_remote_read(SimTime::ZERO, qp, rkey, buf + 1024, 1024)
            .is_ok());
        assert_eq!(
            d.execute_remote_read(SimTime::ZERO, qp, rkey, buf, 8)
                .unwrap_err(),
            VerbsError::OutOfBounds
        );
    }

    #[test]
    fn unknown_rkey_rejected() {
        let mut d = dev();
        let (qp, _, addr, _) = two_tenants(&mut d);
        assert_eq!(
            d.execute_remote_read(SimTime::ZERO, qp, RKey(0x1234), addr, 1)
                .unwrap_err(),
            VerbsError::InvalidRkey
        );
        assert_eq!(d.violations().invalid_rkey, 1);
    }

    #[test]
    fn gpu_registration_requires_peermem() {
        let mut d = dev();
        assert_eq!(
            d.alloc_buffer(4096, MemoryDomain::GpuHbm).unwrap_err(),
            VerbsError::NoPeermem
        );
        d.enable_peermem();
        let buf = d.alloc_buffer(4096, MemoryDomain::GpuHbm).unwrap();
        let pd = d.alloc_pd("gpu-tenant");
        let (mr, _, _) = d
            .reg_mr(pd, buf, 4096, AccessFlags::remote_rw(), Expiry::Never)
            .unwrap();
        assert_eq!(d.mr(mr).unwrap().domain, MemoryDomain::GpuHbm);
    }

    #[test]
    fn dereg_invalidates_keys() {
        let mut d = dev();
        let (qp, rkey, addr, _) = two_tenants(&mut d);
        let mr = MrId(1);
        d.dereg_mr(mr).unwrap();
        assert_eq!(
            d.execute_remote_read(SimTime::ZERO, qp, rkey, addr, 1)
                .unwrap_err(),
            VerbsError::InvalidRkey
        );
        assert_eq!(d.dereg_mr(mr).unwrap_err(), VerbsError::BadHandle);
    }

    #[test]
    fn local_key_validation() {
        let mut d = dev();
        let pd = d.alloc_pd("t");
        let buf = d.alloc_buffer(1024, MemoryDomain::HostDram).unwrap();
        let (_, _, lkey) = d
            .reg_mr(pd, buf, 1024, AccessFlags::local_only(), Expiry::Never)
            .unwrap();
        assert!(d.check_local_access(lkey, buf, 1024).is_ok());
        assert_eq!(
            d.check_local_access(lkey, buf, 2048).unwrap_err(),
            VerbsError::OutOfBounds
        );
        assert_eq!(
            d.check_local_access(LKey(42), buf, 8).unwrap_err(),
            VerbsError::InvalidLkey
        );
    }

    #[test]
    fn qp_lifecycle() {
        let mut d = dev();
        let pd = d.alloc_pd("t");
        let qp = d.create_qp(pd, QpType::DcX).unwrap();
        assert_eq!(d.qp_state(qp), Some(QpState::Init));
        d.connect_qp(qp, NodeId(5), QpId(7)).unwrap();
        assert_eq!(d.qp_state(qp), Some(QpState::ReadyToSend));
        // Double-connect is a state error.
        assert_eq!(
            d.connect_qp(qp, NodeId(5), QpId(7)).unwrap_err(),
            VerbsError::QpNotReady
        );
        assert_eq!(d.qp_pd(qp), Some(pd));
    }
}
