//! Identifiers, access rights and error taxonomy for the verbs layer.

use std::fmt;

use ros2_sim::SimTime;

/// A node identifier within a deployment (client host, DPU, storage server).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Protection-domain handle. PDs are the tenant-isolation boundary: queue
/// pairs and memory regions both belong to exactly one PD, and remote access
/// through a QP can only reach MRs of the *same* PD.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PdId(pub u32);

/// Memory-region handle.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MrId(pub u32);

/// Queue-pair handle.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct QpId(pub u32);

/// A remote key: the capability a peer must present for one-sided access.
/// Values are drawn from the device RNG, so they are not guessable from
/// registration order (cf. Pythia-style rkey probing, §2.3).
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct RKey(pub u64);

impl fmt::Debug for RKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rkey:{:016x}", self.0)
    }
}

/// A local key, validated when the initiating NIC reads/writes local memory.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct LKey(pub u64);

impl fmt::Debug for LKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lkey:{:016x}", self.0)
    }
}

/// A virtual address within a node's registered-memory space.
pub type MemAddr = u64;

/// Access rights on a memory region (verbs `IBV_ACCESS_*`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct AccessFlags {
    /// The local NIC may write into the region (receives, read responses).
    pub local_write: bool,
    /// Remote peers may RDMA READ the region.
    pub remote_read: bool,
    /// Remote peers may RDMA WRITE the region.
    pub remote_write: bool,
}

impl AccessFlags {
    /// Local-only access (no remote rights at all).
    pub fn local_only() -> Self {
        AccessFlags {
            local_write: true,
            remote_read: false,
            remote_write: false,
        }
    }
    /// Remote read plus local write.
    pub fn remote_read() -> Self {
        AccessFlags {
            local_write: true,
            remote_read: true,
            remote_write: false,
        }
    }
    /// Remote write plus local write.
    pub fn remote_write() -> Self {
        AccessFlags {
            local_write: true,
            remote_read: false,
            remote_write: true,
        }
    }
    /// Full remote access.
    pub fn remote_rw() -> Self {
        AccessFlags {
            local_write: true,
            remote_read: true,
            remote_write: true,
        }
    }
}

/// Where a buffer physically lives (§3.5: the GPUDirect extension swaps
/// the DPU-DRAM sink for GPU HBM without touching the rest of the design).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemoryDomain {
    /// Host DRAM.
    HostDram,
    /// BlueField-3 onboard DRAM (the prototype's data sink).
    DpuDram,
    /// GPU HBM, reachable only when peermem registration is enabled.
    GpuHbm,
}

/// Queue-pair transport service.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum QpType {
    /// Reliable Connected (`ucx+rc` / `ofi+verbs`).
    Rc,
    /// Dynamically Connected (`ucx+dc_x`), sharing initiator state.
    DcX,
}

/// Queue-pair state machine (the verbs RESET→INIT→RTR→RTS ladder, plus the
/// ERROR absorbing state entered on protection violations).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QpState {
    /// Freshly created.
    Reset,
    /// Initialized with a PD.
    Init,
    /// Ready to receive.
    ReadyToReceive,
    /// Ready to send (fully connected).
    ReadyToSend,
    /// Fatal: all further work requests fail until the QP is reset.
    Error,
}

/// Everything that can go wrong in the verbs layer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VerbsError {
    /// The presented rkey matches no live region.
    InvalidRkey,
    /// The rkey was explicitly revoked.
    RkeyRevoked,
    /// The rkey's validity window elapsed (scoped/short-lived rkeys, §2.3).
    RkeyExpired,
    /// The region forbids the requested direction.
    AccessDenied,
    /// The access falls outside the registered range.
    OutOfBounds,
    /// The region belongs to a different protection domain than the QP —
    /// the cross-tenant case.
    PdMismatch,
    /// The QP is not in a state that can carry the request.
    QpNotReady,
    /// The handle does not exist.
    BadHandle,
    /// Buffer allocation exhausted the node's registered-memory budget.
    OutOfMemory,
    /// GPU-domain registration attempted without peermem enabled.
    NoPeermem,
    /// Local-key validation failed on the initiator.
    InvalidLkey,
}

/// Security/violation accounting, surfaced by the isolation example and the
/// multi-tenant tests.
#[derive(Clone, Debug, Default)]
pub struct ViolationStats {
    /// Unknown rkey presentations.
    pub invalid_rkey: u64,
    /// Uses of revoked rkeys.
    pub revoked_rkey: u64,
    /// Uses of expired rkeys.
    pub expired_rkey: u64,
    /// Direction violations (e.g. write to a read-only MR).
    pub access_denied: u64,
    /// Out-of-range accesses against valid regions.
    pub out_of_bounds: u64,
    /// Cross-PD (cross-tenant) attempts.
    pub pd_mismatch: u64,
}

impl ViolationStats {
    /// Total violations of any kind.
    pub fn total(&self) -> u64 {
        self.invalid_rkey
            + self.revoked_rkey
            + self.expired_rkey
            + self.access_denied
            + self.out_of_bounds
            + self.pd_mismatch
    }

    /// Records one violation of the matching kind. Non-violation errors
    /// (bad handles, QP state) are not security events and are ignored.
    pub fn record(&mut self, err: VerbsError) {
        match err {
            VerbsError::InvalidRkey => self.invalid_rkey += 1,
            VerbsError::RkeyRevoked => self.revoked_rkey += 1,
            VerbsError::RkeyExpired => self.expired_rkey += 1,
            VerbsError::AccessDenied => self.access_denied += 1,
            VerbsError::OutOfBounds => self.out_of_bounds += 1,
            VerbsError::PdMismatch => self.pd_mismatch += 1,
            _ => {}
        }
    }
}

/// An expiry policy for registered memory (scoped rkeys).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Expiry {
    /// Valid until deregistration.
    Never,
    /// Valid until the given instant.
    At(SimTime),
}

impl Expiry {
    /// Whether the key is expired at `now`.
    pub fn expired(self, now: SimTime) -> bool {
        match self {
            Expiry::Never => false,
            Expiry::At(t) => now > t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_flag_presets() {
        assert!(!AccessFlags::local_only().remote_read);
        assert!(AccessFlags::remote_read().remote_read);
        assert!(!AccessFlags::remote_read().remote_write);
        assert!(AccessFlags::remote_rw().remote_write);
    }

    #[test]
    fn expiry_semantics() {
        assert!(!Expiry::Never.expired(SimTime::MAX));
        let e = Expiry::At(SimTime::from_secs(1));
        assert!(!e.expired(SimTime::from_secs(1)));
        assert!(e.expired(SimTime::from_secs(1) + ros2_sim::SimDuration::from_nanos(1)));
    }

    #[test]
    fn violations_accumulate_by_kind() {
        let mut v = ViolationStats::default();
        v.record(VerbsError::PdMismatch);
        v.record(VerbsError::PdMismatch);
        v.record(VerbsError::RkeyExpired);
        v.record(VerbsError::BadHandle); // not a security event
        assert_eq!(v.pd_mismatch, 2);
        assert_eq!(v.expired_rkey, 1);
        assert_eq!(v.total(), 3);
    }

    #[test]
    fn keys_do_not_leak_value_in_debug() {
        let k = RKey(0xDEADBEEF);
        assert!(format!("{k:?}").starts_with("rkey:"));
    }
}
