//! Registered-memory space of one node: a bump-allocated sparse byte store
//! that the NIC (and only the NIC, for remote peers) reads and writes.

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};

use crate::types::{MemAddr, MemoryDomain, VerbsError};

const PAGE: usize = 4096;

/// One allocated buffer's bookkeeping.
#[derive(Clone, Debug)]
struct Buffer {
    len: u64,
    domain: MemoryDomain,
}

/// A node's DMA-able memory: buffers carved from a budget, with sparse
/// page-granular contents.
#[derive(Debug)]
pub struct NodeMemory {
    budget: u64,
    used: u64,
    frontier: MemAddr,
    buffers: HashMap<MemAddr, Buffer>,
    pages: HashMap<u64, Box<[u8; PAGE]>>,
}

impl NodeMemory {
    /// Creates a memory space of `budget` bytes (e.g. 30 GiB of DPU DRAM).
    pub fn new(budget: u64) -> Self {
        NodeMemory {
            budget,
            used: 0,
            frontier: PAGE as u64,
            buffers: HashMap::new(),
            pages: HashMap::new(),
        }
    }

    /// Allocates a buffer of `len` bytes in `domain`.
    pub fn alloc(&mut self, len: u64, domain: MemoryDomain) -> Result<MemAddr, VerbsError> {
        if len == 0 || self.used + len > self.budget {
            return Err(VerbsError::OutOfMemory);
        }
        let addr = self.frontier;
        // Page-align the next buffer so buffers never share pages.
        self.frontier += len.div_ceil(PAGE as u64) * PAGE as u64;
        self.used += len;
        self.buffers.insert(addr, Buffer { len, domain });
        Ok(addr)
    }

    /// Frees the buffer at `addr`.
    pub fn free(&mut self, addr: MemAddr) -> Result<(), VerbsError> {
        let buf = self.buffers.remove(&addr).ok_or(VerbsError::BadHandle)?;
        self.used -= buf.len;
        let first = addr / PAGE as u64;
        let last = (addr + buf.len).div_ceil(PAGE as u64);
        for p in first..last {
            self.pages.remove(&p);
        }
        Ok(())
    }

    /// The domain of the buffer at `addr`, if any.
    pub fn domain_of(&self, addr: MemAddr) -> Option<MemoryDomain> {
        self.buffers.get(&addr).map(|b| b.domain)
    }

    /// The domain of the buffer *containing* `addr` (not just starting at
    /// it). Linear scan — nodes register at most tens of buffers.
    pub fn domain_of_containing(&self, addr: MemAddr) -> Option<MemoryDomain> {
        self.buffers
            .iter()
            .find(|(&base, b)| addr >= base && addr < base + b.len)
            .map(|(_, b)| b.domain)
    }

    /// Length of the buffer at `addr`, if any.
    pub fn len_of(&self, addr: MemAddr) -> Option<u64> {
        self.buffers.get(&addr).map(|b| b.len)
    }

    /// Whether `[at, at+len)` lies inside a single allocated buffer.
    pub fn in_bounds(&self, at: MemAddr, len: u64) -> bool {
        self.buffers
            .iter()
            .any(|(&base, b)| at >= base && at + len <= base + b.len)
    }

    /// Raw read (no permission semantics — callers enforce those).
    pub fn read(&self, at: MemAddr, len: usize) -> Bytes {
        let mut out = BytesMut::zeroed(len);
        let mut pos = 0usize;
        while pos < len {
            let abs = at + pos as u64;
            let page_no = abs / PAGE as u64;
            let in_page = (abs % PAGE as u64) as usize;
            let take = (PAGE - in_page).min(len - pos);
            if let Some(page) = self.pages.get(&page_no) {
                out[pos..pos + take].copy_from_slice(&page[in_page..in_page + take]);
            }
            pos += take;
        }
        out.freeze()
    }

    /// Raw write (no permission semantics — callers enforce those).
    pub fn write(&mut self, at: MemAddr, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = at + pos as u64;
            let page_no = abs / PAGE as u64;
            let in_page = (abs % PAGE as u64) as usize;
            let take = (PAGE - in_page).min(data.len() - pos);
            let page = self
                .pages
                .entry(page_no)
                .or_insert_with(|| Box::new([0u8; PAGE]));
            page[in_page..in_page + take].copy_from_slice(&data[pos..pos + take]);
            pos += take;
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The allocation budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(100, MemoryDomain::HostDram).unwrap();
        m.write(a, b"dma contents");
        assert_eq!(&m.read(a, 12)[..], b"dma contents");
        assert_eq!(m.domain_of(a), Some(MemoryDomain::HostDram));
        assert_eq!(m.len_of(a), Some(100));
    }

    #[test]
    fn buffers_never_share_pages() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(10, MemoryDomain::HostDram).unwrap();
        let b = m.alloc(10, MemoryDomain::DpuDram).unwrap();
        assert_ne!(a / PAGE as u64, b / PAGE as u64);
    }

    #[test]
    fn budget_is_enforced_and_freed() {
        let mut m = NodeMemory::new(8192);
        let a = m.alloc(8000, MemoryDomain::HostDram).unwrap();
        assert_eq!(
            m.alloc(8000, MemoryDomain::HostDram).unwrap_err(),
            VerbsError::OutOfMemory
        );
        m.free(a).unwrap();
        assert!(m.alloc(8000, MemoryDomain::HostDram).is_ok());
        assert_eq!(
            m.alloc(0, MemoryDomain::HostDram).unwrap_err(),
            VerbsError::OutOfMemory
        );
    }

    #[test]
    fn free_clears_contents() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(64, MemoryDomain::HostDram).unwrap();
        m.write(a, &[0xAA; 64]);
        m.free(a).unwrap();
        // The old pages are dropped: even reading the stale address gives
        // zeroes, so no data leaks to a future tenant of that range.
        assert!(m.read(a, 64).iter().all(|&x| x == 0));
        assert_eq!(m.used(), 0);
        assert!(m.budget() >= 1 << 20);
    }

    #[test]
    fn bounds_checking() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(100, MemoryDomain::HostDram).unwrap();
        assert!(m.in_bounds(a, 100));
        assert!(m.in_bounds(a + 50, 50));
        assert!(!m.in_bounds(a + 50, 51));
        assert!(!m.in_bounds(a + 200, 1));
        assert_eq!(m.free(a + 1).unwrap_err(), VerbsError::BadHandle);
    }
}
