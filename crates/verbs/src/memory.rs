//! Registered-memory space of one node: a bump-allocated sparse byte store
//! that the NIC (and only the NIC, for remote peers) reads and writes.
//!
//! Contents live in a shared [`ros2_buf::ExtentStore`]: an RDMA WRITE
//! landing here *adopts* the sender's `Bytes` handle instead of copying
//! page by page, and an RDMA READ of a contiguously written range returns
//! a zero-copy slice — the functional model of the paper's zero-copy
//! rendezvous placement.

use std::collections::BTreeMap;

use bytes::Bytes;
use ros2_buf::{DataPlaneStats, ExtentStore};

use crate::types::{MemAddr, MemoryDomain, VerbsError};

const PAGE: usize = 4096;

/// One allocated buffer's bookkeeping.
#[derive(Clone, Debug)]
struct Buffer {
    len: u64,
    domain: MemoryDomain,
}

/// A node's DMA-able memory: buffers carved from a budget, with sparse
/// zero-copy extent contents.
#[derive(Debug)]
pub struct NodeMemory {
    budget: u64,
    used: u64,
    frontier: MemAddr,
    /// Sorted by base address; buffers never overlap (bump allocation), so
    /// containment queries are one `range` lookup.
    buffers: BTreeMap<MemAddr, Buffer>,
    store: ExtentStore,
}

impl NodeMemory {
    /// Creates a memory space of `budget` bytes (e.g. 30 GiB of DPU DRAM).
    pub fn new(budget: u64) -> Self {
        NodeMemory {
            budget,
            used: 0,
            frontier: PAGE as u64,
            buffers: BTreeMap::new(),
            store: ExtentStore::new(),
        }
    }

    /// Allocates a buffer of `len` bytes in `domain`.
    pub fn alloc(&mut self, len: u64, domain: MemoryDomain) -> Result<MemAddr, VerbsError> {
        if len == 0 || self.used + len > self.budget {
            return Err(VerbsError::OutOfMemory);
        }
        let addr = self.frontier;
        // Page-align the next buffer so buffers never share pages.
        self.frontier += len.div_ceil(PAGE as u64) * PAGE as u64;
        self.used += len;
        self.buffers.insert(addr, Buffer { len, domain });
        Ok(addr)
    }

    /// Frees the buffer at `addr`, dropping its contents (no data leaks to
    /// a future tenant of the range).
    pub fn free(&mut self, addr: MemAddr) -> Result<(), VerbsError> {
        let buf = self.buffers.remove(&addr).ok_or(VerbsError::BadHandle)?;
        self.used -= buf.len;
        self.store.discard(addr, buf.len);
        Ok(())
    }

    /// The domain of the buffer at `addr`, if any.
    pub fn domain_of(&self, addr: MemAddr) -> Option<MemoryDomain> {
        self.buffers.get(&addr).map(|b| b.domain)
    }

    /// The buffer entry containing `addr`, if any: one ordered-map range
    /// lookup (buffers are disjoint by construction).
    fn containing(&self, addr: MemAddr) -> Option<(MemAddr, &Buffer)> {
        self.buffers
            .range(..=addr)
            .next_back()
            .filter(|(&base, b)| addr < base + b.len)
            .map(|(&base, b)| (base, b))
    }

    /// The domain of the buffer *containing* `addr` (not just starting at
    /// it).
    pub fn domain_of_containing(&self, addr: MemAddr) -> Option<MemoryDomain> {
        self.containing(addr).map(|(_, b)| b.domain)
    }

    /// Length of the buffer at `addr`, if any.
    pub fn len_of(&self, addr: MemAddr) -> Option<u64> {
        self.buffers.get(&addr).map(|b| b.len)
    }

    /// Whether `[at, at+len)` lies inside a single allocated buffer.
    pub fn in_bounds(&self, at: MemAddr, len: u64) -> bool {
        self.containing(at)
            .is_some_and(|(base, b)| at + len <= base + b.len)
    }

    /// Raw read (no permission semantics — callers enforce those). Reads
    /// covered by one prior write return a zero-copy slice of it.
    pub fn read(&mut self, at: MemAddr, len: usize) -> Bytes {
        self.store.read(at, len)
    }

    /// Raw zero-copy write: adopts the caller's buffer handle.
    pub fn write(&mut self, at: MemAddr, data: &Bytes) {
        self.store.write(at, data.clone());
    }

    /// Raw write of a borrowed slice (application-side fills; one copy).
    pub fn write_slice(&mut self, at: MemAddr, data: &[u8]) {
        self.store.write_slice(at, data);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The allocation budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Data-plane (copy vs zero-copy) counters for this memory space.
    pub fn data_plane_stats(&self) -> DataPlaneStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(100, MemoryDomain::HostDram).unwrap();
        m.write(a, &Bytes::from_static(b"dma contents"));
        assert_eq!(&m.read(a, 12)[..], b"dma contents");
        assert_eq!(m.domain_of(a), Some(MemoryDomain::HostDram));
        assert_eq!(m.len_of(a), Some(100));
    }

    #[test]
    fn handle_writes_are_zero_copy() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(1 << 20, MemoryDomain::DpuDram).unwrap();
        let payload = Bytes::from(vec![0xCD; 1 << 20]);
        m.write(a, &payload);
        let back = m.read(a, 1 << 20);
        assert_eq!(back, payload);
        let s = m.data_plane_stats();
        assert_eq!(s.bytes_copied, 0, "staging path must not memcpy");
        assert_eq!(s.bytes_zero_copy, 2 << 20);
    }

    #[test]
    fn buffers_never_share_pages() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(10, MemoryDomain::HostDram).unwrap();
        let b = m.alloc(10, MemoryDomain::DpuDram).unwrap();
        assert_ne!(a / PAGE as u64, b / PAGE as u64);
    }

    #[test]
    fn budget_is_enforced_and_freed() {
        let mut m = NodeMemory::new(8192);
        let a = m.alloc(8000, MemoryDomain::HostDram).unwrap();
        assert_eq!(
            m.alloc(8000, MemoryDomain::HostDram).unwrap_err(),
            VerbsError::OutOfMemory
        );
        m.free(a).unwrap();
        assert!(m.alloc(8000, MemoryDomain::HostDram).is_ok());
        assert_eq!(
            m.alloc(0, MemoryDomain::HostDram).unwrap_err(),
            VerbsError::OutOfMemory
        );
    }

    #[test]
    fn free_clears_contents() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(64, MemoryDomain::HostDram).unwrap();
        m.write_slice(a, &[0xAA; 64]);
        m.free(a).unwrap();
        // The old extents are dropped: even reading the stale address gives
        // zeroes, so no data leaks to a future tenant of that range.
        assert!(m.read(a, 64).iter().all(|&x| x == 0));
        assert_eq!(m.used(), 0);
        assert!(m.budget() >= 1 << 20);
    }

    #[test]
    fn bounds_checking() {
        let mut m = NodeMemory::new(1 << 20);
        let a = m.alloc(100, MemoryDomain::HostDram).unwrap();
        assert!(m.in_bounds(a, 100));
        assert!(m.in_bounds(a + 50, 50));
        assert!(!m.in_bounds(a + 50, 51));
        assert!(!m.in_bounds(a + 200, 1));
        assert_eq!(m.free(a + 1).unwrap_err(), VerbsError::BadHandle);
    }

    #[test]
    fn containment_uses_ordered_lookup() {
        let mut m = NodeMemory::new(1 << 24);
        let addrs: Vec<_> = (0..64)
            .map(|_| m.alloc(100, MemoryDomain::HostDram).unwrap())
            .collect();
        for &a in &addrs {
            assert_eq!(m.domain_of_containing(a + 99), Some(MemoryDomain::HostDram));
            assert_eq!(m.domain_of_containing(a + 100), None); // page gap
        }
        assert_eq!(m.domain_of_containing(0), None);
    }
}
