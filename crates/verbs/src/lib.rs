//! # ros2-verbs — RDMA verbs semantics with tenant isolation
//!
//! The semantic core of RDMA in ROS2: protection domains, registered memory
//! regions with scoped/expiring rkeys, the QP state ladder, and NIC-side
//! enforcement of one-sided READ/WRITE. This layer is *functional* — bytes
//! really move between node memories and every §2.3 security property is
//! enforced and counted:
//!
//! * **cross-tenant access** is stopped by the PD check (an rkey stolen by
//!   tenant B fails through tenant B's QP, and kills that QP);
//! * **rkey leakage** is mitigated by revocation and expiring scoped rkeys;
//! * **bounds and direction rights** are checked before any byte moves.
//!
//! Timing lives in `ros2-fabric`; GPU-domain buffers (GPUDirect, §3.5) are
//! gated on peermem registration.
//!
//! ## Example
//!
//! ```
//! use bytes::Bytes;
//! use ros2_sim::{SimRng, SimTime};
//! use ros2_verbs::{AccessFlags, Expiry, MemoryDomain, NodeId, QpType, RdmaDevice};
//!
//! let mut nic = RdmaDevice::new(NodeId(0), 1 << 20, SimRng::new(1));
//! let pd = nic.alloc_pd("tenant-a");
//! let buf = nic.alloc_buffer(4096, MemoryDomain::HostDram).unwrap();
//! let (_mr, rkey, _lkey) =
//!     nic.reg_mr(pd, buf, 4096, AccessFlags::remote_rw(), Expiry::Never).unwrap();
//! let qp = nic.create_qp(pd, QpType::Rc).unwrap();
//! nic.connect_qp(qp, NodeId(1), ros2_verbs::QpId(1)).unwrap();
//! // A peer's RDMA WRITE lands with zero target-CPU involvement:
//! nic.execute_remote_write(SimTime::ZERO, qp, rkey, buf, &Bytes::from_static(b"hi")).unwrap();
//! assert_eq!(&nic.read_local(buf, 2).unwrap()[..], b"hi");
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod memory;
pub mod types;

pub use device::{MemoryRegion, ProtectionDomain, QueuePair, RdmaDevice};
pub use memory::NodeMemory;
pub use types::{
    AccessFlags, Expiry, LKey, MemAddr, MemoryDomain, MrId, NodeId, PdId, QpId, QpState, QpType,
    RKey, VerbsError, ViolationStats,
};
