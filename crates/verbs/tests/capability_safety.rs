//! Property test: the capability model is safe under arbitrary operation
//! sequences — no remote access ever succeeds without a live, unexpired,
//! unrevoked rkey of the right PD, rights, and range.

use bytes::Bytes;
use proptest::prelude::*;
use ros2_sim::{SimRng, SimTime};
use ros2_verbs::{
    AccessFlags, Expiry, MemoryDomain, NodeId, QpId, QpState, QpType, RKey, RdmaDevice,
};

#[derive(Debug, Clone)]
enum Action {
    /// Attempt a read with an offset/len inside or outside the region.
    Read {
        qp_sel: bool,
        key_fuzz: u64,
        off: u64,
        len: u64,
    },
    /// Attempt a write likewise.
    Write {
        qp_sel: bool,
        key_fuzz: u64,
        off: u64,
        len: u64,
    },
    /// Revoke the region's rkey.
    Revoke,
    /// Advance the clock (can cross the expiry).
    Advance { ms: u64 },
    /// Reset the foreign QP if it errored.
    ResetForeign,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<bool>(), 0u64..4, 0u64..6000, 1u64..6000).prop_map(|(q, k, o, l)| Action::Read {
            qp_sel: q,
            key_fuzz: k,
            off: o,
            len: l
        }),
        (any::<bool>(), 0u64..4, 0u64..6000, 1u64..6000).prop_map(|(q, k, o, l)| Action::Write {
            qp_sel: q,
            key_fuzz: k,
            off: o,
            len: l
        }),
        Just(Action::Revoke),
        (1u64..2000).prop_map(|ms| Action::Advance { ms }),
        Just(Action::ResetForeign),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn no_unauthorized_access_ever_succeeds(
        actions in prop::collection::vec(action_strategy(), 1..80),
        seed in any::<u64>(),
    ) {
        let mut dev = RdmaDevice::new(NodeId(0), 1 << 22, SimRng::new(seed));
        let pd_owner = dev.alloc_pd("owner");
        let pd_foreign = dev.alloc_pd("foreign");
        let buf = dev.alloc_buffer(4096, MemoryDomain::HostDram).unwrap();
        let expiry_at = SimTime::from_secs(1);
        let (mr, rkey, _) = dev
            .reg_mr(pd_owner, buf, 4096, AccessFlags::remote_read(), Expiry::At(expiry_at))
            .unwrap();
        let qp_owner = dev.create_qp(pd_owner, QpType::Rc).unwrap();
        dev.connect_qp(qp_owner, NodeId(1), QpId(10)).unwrap();
        let qp_foreign = dev.create_qp(pd_foreign, QpType::Rc).unwrap();
        dev.connect_qp(qp_foreign, NodeId(2), QpId(11)).unwrap();

        let mut now = SimTime::ZERO;
        let mut revoked = false;

        for a in actions {
            match a {
                Action::Advance { ms } => {
                    now += ros2_sim::SimDuration::from_millis(ms);
                }
                Action::Revoke => {
                    dev.revoke_rkey(mr).unwrap();
                    revoked = true;
                }
                Action::ResetForeign => {
                    if dev.qp_state(qp_foreign) == Some(QpState::Error) {
                        dev.reset_qp(qp_foreign).unwrap();
                        dev.connect_qp(qp_foreign, NodeId(2), QpId(11)).unwrap();
                    }
                }
                Action::Read { qp_sel, key_fuzz, off, len } => {
                    let qp = if qp_sel { qp_owner } else { qp_foreign };
                    let key = if key_fuzz == 0 { rkey } else { RKey(rkey.0 ^ key_fuzz) };
                    let res = dev.execute_remote_read(now, qp, key, buf + off, len);
                    let authorized = qp_sel
                        && key_fuzz == 0
                        && !revoked
                        && now <= expiry_at
                        && off + len <= 4096
                        && dev.qp_state(qp_owner) == Some(QpState::ReadyToSend);
                    if res.is_ok() {
                        prop_assert!(authorized, "unauthorized read succeeded: {a:?}");
                    }
                }
                Action::Write { qp_sel, key_fuzz, off, len } => {
                    let qp = if qp_sel { qp_owner } else { qp_foreign };
                    let key = if key_fuzz == 0 { rkey } else { RKey(rkey.0 ^ key_fuzz) };
                    let data = Bytes::from(vec![0u8; len as usize]);
                    let res = dev.execute_remote_write(now, qp, key, buf + off, &data);
                    // The MR is read-only: *every* remote write must fail.
                    prop_assert!(res.is_err(), "write to read-only MR succeeded");
                }
            }
        }
    }

    /// Fuzzed rkeys never hit a real region (2^64 space, Pythia defence).
    #[test]
    fn random_rkeys_never_validate(seed in any::<u64>(), probes in prop::collection::vec(any::<u64>(), 1..64)) {
        let mut dev = RdmaDevice::new(NodeId(0), 1 << 20, SimRng::new(seed));
        let pd = dev.alloc_pd("t");
        let buf = dev.alloc_buffer(4096, MemoryDomain::HostDram).unwrap();
        let (_, rkey, _) = dev
            .reg_mr(pd, buf, 4096, AccessFlags::remote_rw(), Expiry::Never)
            .unwrap();
        let qp = dev.create_qp(pd, QpType::Rc).unwrap();
        dev.connect_qp(qp, NodeId(1), QpId(1)).unwrap();
        for p in probes {
            prop_assume!(p != rkey.0);
            let res = dev.execute_remote_read(SimTime::ZERO, qp, RKey(p), buf, 1);
            prop_assert!(res.is_err());
            // Recover the QP for the next probe.
            dev.reset_qp(qp).unwrap();
            dev.connect_qp(qp, NodeId(1), QpId(1)).unwrap();
        }
        prop_assert!(dev.violations().invalid_rkey > 0);
    }
}
